#include "core/messages.h"

#include "storage/column_block.h"

namespace harbor {

namespace {

Message Wrap(MsgType type, ByteBufferWriter* out) {
  Message m;
  m.type = static_cast<uint16_t>(type);
  m.payload = out->TakeData();
  return m;
}

}  // namespace

Message AckMessage() {
  Message m;
  m.type = static_cast<uint16_t>(MsgType::kAck);
  return m;
}

Message ExecUpdateMsg::Encode() const {
  ByteBufferWriter out;
  out.WriteU64(txn);
  out.WriteU32(coordinator);
  request.Serialize(&out);
  return Wrap(MsgType::kExecUpdate, &out);
}

Result<ExecUpdateMsg> ExecUpdateMsg::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  ExecUpdateMsg r;
  HARBOR_ASSIGN_OR_RETURN(r.txn, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.coordinator, in.ReadU32());
  HARBOR_ASSIGN_OR_RETURN(r.request, UpdateRequest::Deserialize(&in));
  return r;
}

Message PrepareMsg::Encode() const {
  ByteBufferWriter out;
  out.WriteU64(txn);
  out.WriteU32(coordinator);
  out.WriteU32(static_cast<uint32_t>(participants.size()));
  for (SiteId s : participants) out.WriteU32(s);
  return Wrap(MsgType::kPrepare, &out);
}

Result<PrepareMsg> PrepareMsg::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  PrepareMsg r;
  HARBOR_ASSIGN_OR_RETURN(r.txn, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.coordinator, in.ReadU32());
  HARBOR_ASSIGN_OR_RETURN(uint32_t n, in.ReadU32());
  r.participants.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    HARBOR_ASSIGN_OR_RETURN(r.participants[i], in.ReadU32());
  }
  return r;
}

Message CommitTsMsg::Encode() const {
  ByteBufferWriter out;
  out.WriteU64(txn);
  out.WriteU64(commit_ts);
  out.WriteU64(stable_ts);
  return Wrap(type, &out);
}

Result<CommitTsMsg> CommitTsMsg::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  CommitTsMsg r;
  r.type = static_cast<MsgType>(m.type);
  HARBOR_ASSIGN_OR_RETURN(r.txn, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.commit_ts, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.stable_ts, in.ReadU64());
  return r;
}

Message TxnMsg::Encode() const {
  ByteBufferWriter out;
  out.WriteU64(txn);
  out.WriteU64(stable_ts);
  return Wrap(type, &out);
}

Result<TxnMsg> TxnMsg::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  TxnMsg r;
  r.type = static_cast<MsgType>(m.type);
  HARBOR_ASSIGN_OR_RETURN(r.txn, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.stable_ts, in.ReadU64());
  return r;
}

Message ScanMsg::Encode() const {
  ByteBufferWriter out;
  spec.Serialize(&out);
  out.WriteU64(owner);
  out.WriteBool(with_page_locks);
  out.WriteBool(snapshot_read);
  out.WriteBool(minimal_projection);
  out.WriteU32(max_tuples);
  out.WriteBool(has_cursor);
  out.WriteU64(cursor_insertion_ts);
  out.WriteU64(cursor_tuple_id);
  out.WriteU64(cap_insertion_ts);
  return Wrap(MsgType::kScan, &out);
}

Result<ScanMsg> ScanMsg::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  ScanMsg r;
  HARBOR_ASSIGN_OR_RETURN(r.spec, ScanSpec::Deserialize(&in));
  HARBOR_ASSIGN_OR_RETURN(r.owner, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.with_page_locks, in.ReadBool());
  HARBOR_ASSIGN_OR_RETURN(r.snapshot_read, in.ReadBool());
  HARBOR_ASSIGN_OR_RETURN(r.minimal_projection, in.ReadBool());
  HARBOR_ASSIGN_OR_RETURN(r.max_tuples, in.ReadU32());
  HARBOR_ASSIGN_OR_RETURN(r.has_cursor, in.ReadBool());
  HARBOR_ASSIGN_OR_RETURN(r.cursor_insertion_ts, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.cursor_tuple_id, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.cap_insertion_ts, in.ReadU64());
  return r;
}

Message ScanReplyMsg::Encode() const {
  ByteBufferWriter out;
  out.WriteBool(minimal);
  if (minimal) {
    out.WriteU32(static_cast<uint32_t>(id_deletions.size()));
    for (const IdDeletion& d : id_deletions) {
      out.WriteU64(d.tuple_id);
      out.WriteU64(d.deletion_ts);
      out.WriteU64(d.insertion_ts);
    }
  } else {
    schema.Serialize(&out);
    out.WriteBool(columnar);
    if (columnar) {
      EncodeColumnBlock(schema, tuples, &out);
    } else {
      out.WriteU32(static_cast<uint32_t>(tuples.size()));
      for (const Tuple& t : tuples) t.Serialize(schema, &out);
    }
  }
  out.WriteBool(truncated);
  out.WriteU64(last_insertion_ts);
  out.WriteU64(last_tuple_id);
  out.WriteU64(cap_insertion_ts);
  return Wrap(MsgType::kScanReply, &out);
}

Result<ScanReplyMsg> ScanReplyMsg::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  ScanReplyMsg r;
  HARBOR_ASSIGN_OR_RETURN(r.minimal, in.ReadBool());
  if (r.minimal) {
    HARBOR_ASSIGN_OR_RETURN(uint32_t n, in.ReadU32());
    r.id_deletions.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      IdDeletion d;
      HARBOR_ASSIGN_OR_RETURN(d.tuple_id, in.ReadU64());
      HARBOR_ASSIGN_OR_RETURN(d.deletion_ts, in.ReadU64());
      HARBOR_ASSIGN_OR_RETURN(d.insertion_ts, in.ReadU64());
      r.id_deletions.push_back(d);
    }
  } else {
    HARBOR_ASSIGN_OR_RETURN(r.schema, Schema::Deserialize(&in));
    HARBOR_ASSIGN_OR_RETURN(r.columnar, in.ReadBool());
    if (r.columnar) {
      HARBOR_ASSIGN_OR_RETURN(r.tuples, DecodeColumnBlock(r.schema, &in));
    } else {
      HARBOR_ASSIGN_OR_RETURN(uint32_t n, in.ReadU32());
      r.tuples.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        HARBOR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(r.schema, &in));
        r.tuples.push_back(std::move(t));
      }
    }
  }
  HARBOR_ASSIGN_OR_RETURN(r.truncated, in.ReadBool());
  HARBOR_ASSIGN_OR_RETURN(r.last_insertion_ts, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.last_tuple_id, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.cap_insertion_ts, in.ReadU64());
  return r;
}

Message TableLockMsg::Encode() const {
  ByteBufferWriter out;
  out.WriteU32(object_id);
  out.WriteU32(owner_site);
  return Wrap(type, &out);
}

Result<TableLockMsg> TableLockMsg::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  TableLockMsg r;
  r.type = static_cast<MsgType>(m.type);
  HARBOR_ASSIGN_OR_RETURN(r.object_id, in.ReadU32());
  HARBOR_ASSIGN_OR_RETURN(r.owner_site, in.ReadU32());
  return r;
}

Message ComingOnlineMsg::Encode() const {
  ByteBufferWriter out;
  out.WriteU32(site);
  out.WriteU32(static_cast<uint32_t>(objects.size()));
  for (const auto& [table, partition] : objects) {
    out.WriteU32(table);
    partition.Serialize(&out);
  }
  return Wrap(MsgType::kComingOnline, &out);
}

Result<ComingOnlineMsg> ComingOnlineMsg::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  ComingOnlineMsg r;
  HARBOR_ASSIGN_OR_RETURN(r.site, in.ReadU32());
  HARBOR_ASSIGN_OR_RETURN(uint32_t n, in.ReadU32());
  r.objects.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    HARBOR_ASSIGN_OR_RETURN(TableId table, in.ReadU32());
    HARBOR_ASSIGN_OR_RETURN(PartitionRange range,
                            PartitionRange::Deserialize(&in));
    r.objects.emplace_back(table, std::move(range));
  }
  return r;
}

Message VoteReply::Encode() const {
  ByteBufferWriter out;
  out.WriteBool(yes);
  return Wrap(MsgType::kVote, &out);
}

Result<VoteReply> VoteReply::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  VoteReply r;
  HARBOR_ASSIGN_OR_RETURN(r.yes, in.ReadBool());
  return r;
}

Message ResolveReply::Encode() const {
  ByteBufferWriter out;
  out.WriteBool(known);
  out.WriteBool(committed);
  out.WriteU64(commit_ts);
  return Wrap(MsgType::kResolveReply, &out);
}

Result<ResolveReply> ResolveReply::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  ResolveReply r;
  HARBOR_ASSIGN_OR_RETURN(r.known, in.ReadBool());
  HARBOR_ASSIGN_OR_RETURN(r.committed, in.ReadBool());
  HARBOR_ASSIGN_OR_RETURN(r.commit_ts, in.ReadU64());
  return r;
}

Message ProbeReply::Encode() const {
  ByteBufferWriter out;
  out.WriteBool(known);
  out.WriteU8(phase);
  out.WriteBool(voted_yes);
  out.WriteU64(pending_commit_ts);
  out.WriteU32(static_cast<uint32_t>(participants.size()));
  for (SiteId s : participants) out.WriteU32(s);
  return Wrap(MsgType::kProbeReply, &out);
}

Result<ProbeReply> ProbeReply::Decode(const Message& m) {
  ByteBufferReader in(m.payload);
  ProbeReply r;
  HARBOR_ASSIGN_OR_RETURN(r.known, in.ReadBool());
  HARBOR_ASSIGN_OR_RETURN(r.phase, in.ReadU8());
  HARBOR_ASSIGN_OR_RETURN(r.voted_yes, in.ReadBool());
  HARBOR_ASSIGN_OR_RETURN(r.pending_commit_ts, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(uint32_t n, in.ReadU32());
  r.participants.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    HARBOR_ASSIGN_OR_RETURN(r.participants[i], in.ReadU32());
  }
  return r;
}

}  // namespace harbor
