#include "core/update_request.h"

#include "storage/value_serde.h"

namespace harbor {

void UpdateRequest::Serialize(ByteBufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind));
  out->WriteU32(table_id);
  out->WriteU32(static_cast<uint32_t>(values.size()));
  for (const Value& v : values) WriteValue(out, v);
  out->WriteU64(tuple_id);
  predicate.Serialize(out);
  out->WriteU32(static_cast<uint32_t>(sets.size()));
  for (const SetClause& s : sets) s.Serialize(out);
  out->WriteI64(cpu_work_cycles);
}

Result<UpdateRequest> UpdateRequest::Deserialize(ByteBufferReader* in) {
  UpdateRequest r;
  HARBOR_ASSIGN_OR_RETURN(uint8_t kind, in->ReadU8());
  r.kind = static_cast<Kind>(kind);
  HARBOR_ASSIGN_OR_RETURN(r.table_id, in->ReadU32());
  HARBOR_ASSIGN_OR_RETURN(uint32_t nv, in->ReadU32());
  r.values.reserve(nv);
  for (uint32_t i = 0; i < nv; ++i) {
    HARBOR_ASSIGN_OR_RETURN(Value v, ReadValue(in));
    r.values.push_back(std::move(v));
  }
  HARBOR_ASSIGN_OR_RETURN(r.tuple_id, in->ReadU64());
  HARBOR_ASSIGN_OR_RETURN(r.predicate, Predicate::Deserialize(in));
  HARBOR_ASSIGN_OR_RETURN(uint32_t ns, in->ReadU32());
  r.sets.reserve(ns);
  for (uint32_t i = 0; i < ns; ++i) {
    HARBOR_ASSIGN_OR_RETURN(SetClause s, SetClause::Deserialize(in));
    r.sets.push_back(std::move(s));
  }
  HARBOR_ASSIGN_OR_RETURN(r.cpu_work_cycles, in->ReadI64());
  return r;
}

std::string UpdateRequest::ToString() const {
  switch (kind) {
    case Kind::kInsert:
      return "INSERT INTO t" + std::to_string(table_id) + " (tid=" +
             std::to_string(tuple_id) + ")";
    case Kind::kDelete:
      return "DELETE FROM t" + std::to_string(table_id) + " WHERE " +
             predicate.ToString();
    case Kind::kUpdate:
      return "UPDATE t" + std::to_string(table_id) + " WHERE " +
             predicate.ToString();
  }
  return "?";
}

}  // namespace harbor
