#include "core/cluster.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace harbor {

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {}

Cluster::~Cluster() {
  for (auto& w : workers_) {
    if (w) w->Crash();
  }
  for (auto& c : coordinators_) {
    if (c) c->Crash();
  }
  authority_.StopTicker();
}

Result<std::unique_ptr<Cluster>> Cluster::Create(ClusterOptions options) {
  auto cluster = std::unique_ptr<Cluster>(new Cluster(options));
  if (options.base_dir.empty()) {
    char tmpl[] = "/tmp/harbor-cluster-XXXXXX";
    char* dir = ::mkdtemp(tmpl);
    if (dir == nullptr) return Status::IoError("mkdtemp failed");
    cluster->base_dir_ = dir;
    cluster->owns_base_dir_ = true;
  } else {
    cluster->base_dir_ = options.base_dir;
    ::mkdir(cluster->base_dir_.c_str(), 0755);
  }

  cluster->scheduler_ = std::make_unique<runtime::Scheduler>();
  cluster->network_ =
      std::make_unique<Network>(options.sim, cluster->scheduler_.get());
  // A site that dies between BeginCommit and EndCommit would pin
  // StableTime() forever; subscribed before any site so the epoch holds are
  // freed ahead of the workers' own crash handling (consensus, §4.3.3).
  Cluster* raw = cluster.get();
  cluster->network_->SubscribeCrash(
      [raw](SiteId site) { raw->authority_.ReleaseSite(site); });

  CoordinatorOptions copt;
  copt.site_id = 0;
  copt.dir = cluster->base_dir_ + "/coordinator";
  ::mkdir(copt.dir.c_str(), 0755);
  copt.sim = options.sim;
  copt.protocol = options.protocol;
  copt.group_commit = options.group_commit;
  copt.continue_on_worker_failure = options.continue_on_worker_failure;
  copt.snapshot_max_lag_epochs = options.snapshot_max_lag_epochs;
  cluster->coordinators_.push_back(std::make_unique<Coordinator>(
      cluster->network_.get(), &cluster->catalog_, &cluster->authority_,
      &cluster->liveness_, copt));
  HARBOR_RETURN_NOT_OK(cluster->coordinators_[0]->Start());

  for (int i = 0; i < options.num_workers; ++i) {
    WorkerOptions wopt;
    wopt.site_id = WorkerSite(i);
    wopt.dir = cluster->base_dir_ + "/site" + std::to_string(wopt.site_id);
    wopt.sim = options.sim;
    wopt.protocol = options.protocol;
    wopt.group_commit = options.group_commit;
    wopt.buffer_pages = options.buffer_pages;
    wopt.server_threads = options.worker_server_threads;
    wopt.lock_timeout = options.lock_timeout;
    wopt.checkpoint_period_ms = options.checkpoint_period_ms;
    wopt.default_coordinator = 0;
    auto worker = std::make_unique<Worker>(cluster->network_.get(),
                                           &cluster->catalog_,
                                           &cluster->authority_,
                                           &cluster->liveness_, wopt);
    HARBOR_RETURN_NOT_OK(worker->Start());
    cluster->workers_.push_back(std::move(worker));
  }

  if (options.epoch_tick_ms > 0) {
    cluster->authority_.StartTicker(cluster->scheduler_.get(),
                                    options.epoch_tick_ms);
  }
  return cluster;
}

Result<Coordinator*> Cluster::AddCoordinator() {
  CoordinatorOptions copt;
  copt.site_id = ExtraCoordinatorSite(static_cast<int>(coordinators_.size()));
  copt.dir = base_dir_ + "/coordinator" + std::to_string(copt.site_id);
  ::mkdir(copt.dir.c_str(), 0755);
  copt.sim = options_.sim;
  copt.protocol = options_.protocol;
  copt.group_commit = options_.group_commit;
  copt.continue_on_worker_failure = options_.continue_on_worker_failure;
  copt.snapshot_max_lag_epochs = options_.snapshot_max_lag_epochs;
  coordinators_.push_back(std::make_unique<Coordinator>(
      network_.get(), &catalog_, &authority_, &liveness_, copt));
  HARBOR_RETURN_NOT_OK(coordinators_.back()->Start());
  return coordinators_.back().get();
}

std::vector<SiteId> Cluster::CoordinatorSites() const {
  std::vector<SiteId> out;
  for (const auto& c : coordinators_) out.push_back(c->site_id());
  return out;
}

Result<TableId> Cluster::CreateTable(const TableSpec& spec) {
  HARBOR_ASSIGN_OR_RETURN(TableId table,
                          catalog_.AddTable(spec.name, spec.schema));
  if (spec.replicas.empty() && spec.replication_factor > 0) {
    // Deterministic K-safe placement: replication_factor full replicas on
    // the rendezvous-selected worker sites (not one on every worker).
    PlacementSpec pspec;
    pspec.replication_factor = spec.replication_factor;
    pspec.segment_page_budget = spec.default_segment_page_budget;
    pspec.indexed_column = spec.indexed_column;
    pspec.columnar = spec.columnar;
    std::vector<SiteId> sites;
    sites.reserve(static_cast<size_t>(num_workers()));
    for (int i = 0; i < num_workers(); ++i) sites.push_back(WorkerSite(i));
    HARBOR_RETURN_NOT_OK(catalog_.PlaceTable(table, sites, pspec).status());
    for (auto& w : workers_) {
      if (w->running()) HARBOR_RETURN_NOT_OK(w->ProvisionReplicas());
    }
    return table;
  }
  std::vector<ReplicaSpec> replicas = spec.replicas;
  if (replicas.empty()) {
    for (int i = 0; i < num_workers(); ++i) {
      ReplicaSpec r;
      r.worker_index = i;
      r.segment_page_budget = spec.default_segment_page_budget;
      replicas.push_back(r);
    }
  }
  for (const ReplicaSpec& r : replicas) {
    Schema physical = r.column_order.empty()
                          ? spec.schema
                          : spec.schema.Reordered(r.column_order);
    std::string indexed =
        r.indexed_column.empty() ? spec.indexed_column : r.indexed_column;
    const bool columnar = r.columnar < 0 ? spec.columnar : r.columnar != 0;
    HARBOR_RETURN_NOT_OK(
        catalog_
            .AddReplica(table, WorkerSite(r.worker_index), r.partition,
                        std::move(physical), r.segment_page_budget,
                        std::move(indexed), columnar)
            .status());
  }
  for (const ReplicaSpec& r : replicas) {
    Worker* w = worker(r.worker_index);
    if (w->running()) {
      HARBOR_RETURN_NOT_OK(w->ProvisionReplicas());
    }
  }
  return table;
}

Status Cluster::BulkLoad(TableId table, const std::vector<LoadRow>& rows,
                         bool seal_segment) {
  HARBOR_ASSIGN_OR_RETURN(const TableDef* def, catalog_.GetTable(table));
  for (const ReplicaPlacement& p : def->replicas) {
    Worker* w = nullptr;
    for (auto& candidate : workers_) {
      if (candidate->site_id() == p.site) w = candidate.get();
    }
    if (w == nullptr || !w->running()) continue;
    HARBOR_ASSIGN_OR_RETURN(TableObject * obj,
                            w->local_catalog()->GetObject(p.object_id));
    HARBOR_ASSIGN_OR_RETURN(std::vector<size_t> mapping,
                            obj->schema.MappingFrom(def->logical_schema));
    size_t key_idx = SIZE_MAX;
    if (!obj->partition.IsFull()) {
      HARBOR_ASSIGN_OR_RETURN(
          key_idx, def->logical_schema.ColumnIndex(obj->partition.column));
    }
    for (const LoadRow& row : rows) {
      if (key_idx != SIZE_MAX) {
        const Value& key = row.values[key_idx];
        int64_t k = key.type() == ColumnType::kInt32
                        ? key.AsInt32()
                        : static_cast<int64_t>(key.AsNumeric());
        if (key.type() == ColumnType::kInt64) k = key.AsInt64();
        if (!obj->partition.Contains(k)) continue;
      }
      Tuple t(row.values);
      t.set_tuple_id(row.tuple_id);
      t.set_insertion_ts(row.insertion_ts);
      t.set_deletion_ts(row.deletion_ts);
      HARBOR_RETURN_NOT_OK(
          w->store()->InsertCommittedTuple(obj, t.RemapColumns(mapping))
              .status());
    }
    if (seal_segment) {
      HARBOR_RETURN_NOT_OK(obj->file->StartNewSegment());
    }
    HARBOR_RETURN_NOT_OK(obj->file->SyncHeaderIfDirty());
  }
  return Status::OK();
}

Status Cluster::CheckpointAll() {
  for (auto& w : workers_) {
    if (!w->running()) continue;
    if (WorkerLogs(options_.protocol)) {
      HARBOR_RETURN_NOT_OK(w->pool()->FlushAll());
      HARBOR_RETURN_NOT_OK(
          AriesRecovery::WriteCheckpoint(w->log(), w->pool(), w->txns()));
    } else {
      HARBOR_RETURN_NOT_OK(w->WriteCheckpoint());
    }
  }
  return Status::OK();
}

Result<RecoveryStats> Cluster::RecoverWorker(int i, RecoveryOptions options) {
  Worker* w = worker(i);
  if (WorkerLogs(options_.protocol)) {
    // Log-based path: ARIES restart recovery happens inside Start() and the
    // site is immediately online (the log is the source of truth).
    Stopwatch watch;
    HARBOR_RETURN_NOT_OK(w->Start(SiteState::kOnline));
    RecoveryStats stats;
    stats.total_seconds = watch.ElapsedSeconds();
    return stats;
  }
  // HARBOR path: endpoint up in recovering state, then the three phases.
  Stopwatch watch;
  HARBOR_RETURN_NOT_OK(w->Start(SiteState::kRecovering));
  if (options.coordinators.empty()) options.coordinators = CoordinatorSites();
  RecoveryManager manager(w, options);
  HARBOR_ASSIGN_OR_RETURN(RecoveryStats stats, manager.Recover());
  stats.total_seconds = watch.ElapsedSeconds();
  return stats;
}

void Cluster::AdvanceEpoch(int n) {
  for (int i = 0; i < n; ++i) authority_.Advance();
}

}  // namespace harbor
