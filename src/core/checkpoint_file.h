#ifndef HARBOR_CORE_CHECKPOINT_FILE_H_
#define HARBOR_CORE_CHECKPOINT_FILE_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/types.h"

namespace harbor {

/// \brief The "well-known location on disk" where a site records its
/// checkpoint time T (Figure 3-2): every update with commit time <= T is on
/// disk.
///
/// During recovery a site switches to finer-granularity per-object
/// checkpoints — objects recover at different rates, and a restart mid-
/// recovery should resume each object from its own high-water mark (§5.3).
/// The global time applies to any object without an override.
/// Durable progress marker for an interrupted Phase-2 catch-up stream: the
/// last chunk boundary whose tuples are known to be on disk. `round_hwm` is
/// the historical snapshot the interrupted round was copying toward — a
/// resumed round MUST reuse it, because a fresh (later) HWM would skip
/// deletions of already-watermarked tuples that committed between the two
/// snapshots. `(insertion_ts, tuple_id)` is the stream cursor: every version
/// with key <= the cursor is durably applied; the resumed stream re-fetches
/// strictly beyond it.
struct StreamResume {
  Timestamp round_hwm = 0;
  Timestamp insertion_ts = 0;
  TupleId tuple_id = 0;

  bool operator==(const StreamResume&) const = default;
};

struct CheckpointRecord {
  Timestamp global_time = 0;
  std::unordered_map<ObjectId, Timestamp> per_object;
  /// Mid-stream Phase-2 watermarks, keyed like per_object. An entry exists
  /// only while that object's catch-up stream is interrupted; it is cleared
  /// by the round's object checkpoint and by global-checkpoint promotion.
  std::unordered_map<ObjectId, StreamResume> resume;

  Timestamp TimeFor(ObjectId object) const {
    auto it = per_object.find(object);
    return it == per_object.end() ? global_time : it->second;
  }

  const StreamResume* ResumeFor(ObjectId object) const {
    auto it = resume.find(object);
    return it == resume.end() ? nullptr : &it->second;
  }
};

/// Reads the checkpoint record from `dir` (a missing file reads as time 0:
/// recover from a blank slate, §5.3).
Result<CheckpointRecord> ReadCheckpointRecord(const std::string& dir);

/// Atomically (write + rename) persists the checkpoint record with an fsync.
Status WriteCheckpointRecord(const std::string& dir,
                             const CheckpointRecord& record);

}  // namespace harbor

#endif  // HARBOR_CORE_CHECKPOINT_FILE_H_
