#ifndef HARBOR_CORE_CHECKPOINT_FILE_H_
#define HARBOR_CORE_CHECKPOINT_FILE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace harbor {

/// \brief The "well-known location on disk" where a site records its
/// checkpoint time T (Figure 3-2): every update with commit time <= T is on
/// disk.
///
/// During recovery a site switches to finer-granularity per-object
/// checkpoints — objects recover at different rates, and a restart mid-
/// recovery should resume each object from its own high-water mark (§5.3).
/// The global time applies to any object without an override.
/// Durable progress marker for an interrupted Phase-2 catch-up stream: the
/// last chunk boundary whose tuples are known to be on disk. `round_hwm` is
/// the historical snapshot the interrupted round was copying toward — a
/// resumed round MUST reuse it, because a fresh (later) HWM would skip
/// deletions of already-watermarked tuples that committed between the two
/// snapshots. `(insertion_ts, tuple_id)` is the stream cursor: every version
/// with key <= the cursor is durably applied; the resumed stream re-fetches
/// strictly beyond it.
struct StreamResume {
  Timestamp round_hwm = 0;
  Timestamp insertion_ts = 0;
  TupleId tuple_id = 0;
  /// Which of the round's parallel catch-up streams wrote this watermark,
  /// and the disjoint insertion-ts window (window_lo, window_hi] that
  /// stream copies. Parallel multi-buddy recovery splits the round's
  /// (checkpoint, round_hwm] range into such windows, one stream per buddy;
  /// a resumed round rebuilds the interrupted round's geometry from the
  /// stored windows. window_hi == 0 means "the whole round range" — the
  /// single-stream form, and how legacy V2 records read back.
  uint32_t stream_index = 0;
  Timestamp window_lo = 0;
  Timestamp window_hi = 0;

  bool operator==(const StreamResume&) const = default;
};

struct CheckpointRecord {
  Timestamp global_time = 0;
  std::unordered_map<ObjectId, Timestamp> per_object;
  /// Mid-stream Phase-2 watermarks, keyed like per_object: one entry per
  /// interrupted catch-up stream of the object (several when the round was
  /// fanned out over multiple buddies). Entries exist only while the
  /// object's catch-up is interrupted; they are cleared by the round's
  /// object checkpoint and by global-checkpoint promotion.
  std::unordered_map<ObjectId, std::vector<StreamResume>> resume;

  Timestamp TimeFor(ObjectId object) const {
    auto it = per_object.find(object);
    return it == per_object.end() ? global_time : it->second;
  }

  const std::vector<StreamResume>* ResumeFor(ObjectId object) const {
    auto it = resume.find(object);
    return it == resume.end() || it->second.empty() ? nullptr : &it->second;
  }
};

/// Reads the checkpoint record from `dir` (a missing file reads as time 0:
/// recover from a blank slate, §5.3).
Result<CheckpointRecord> ReadCheckpointRecord(const std::string& dir);

/// Atomically (write + rename) persists the checkpoint record with an fsync.
Status WriteCheckpointRecord(const std::string& dir,
                             const CheckpointRecord& record);

}  // namespace harbor

#endif  // HARBOR_CORE_CHECKPOINT_FILE_H_
