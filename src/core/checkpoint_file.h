#ifndef HARBOR_CORE_CHECKPOINT_FILE_H_
#define HARBOR_CORE_CHECKPOINT_FILE_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/types.h"

namespace harbor {

/// \brief The "well-known location on disk" where a site records its
/// checkpoint time T (Figure 3-2): every update with commit time <= T is on
/// disk.
///
/// During recovery a site switches to finer-granularity per-object
/// checkpoints — objects recover at different rates, and a restart mid-
/// recovery should resume each object from its own high-water mark (§5.3).
/// The global time applies to any object without an override.
struct CheckpointRecord {
  Timestamp global_time = 0;
  std::unordered_map<ObjectId, Timestamp> per_object;

  Timestamp TimeFor(ObjectId object) const {
    auto it = per_object.find(object);
    return it == per_object.end() ? global_time : it->second;
  }
};

/// Reads the checkpoint record from `dir` (a missing file reads as time 0:
/// recover from a blank slate, §5.3).
Result<CheckpointRecord> ReadCheckpointRecord(const std::string& dir);

/// Atomically (write + rename) persists the checkpoint record with an fsync.
Status WriteCheckpointRecord(const std::string& dir,
                             const CheckpointRecord& record);

}  // namespace harbor

#endif  // HARBOR_CORE_CHECKPOINT_FILE_H_
