#ifndef HARBOR_CORE_MESSAGES_H_
#define HARBOR_CORE_MESSAGES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "core/update_request.h"
#include "exec/scan_spec.h"
#include "net/network.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace harbor {

/// Wire protocol message types between coordinator and worker sites.
enum class MsgType : uint16_t {
  // Transaction execution and commit processing (Chapter 4).
  kExecUpdate = 1,
  kPrepare = 2,
  kPrepareToCommit = 3,  // 3PC only
  kCommit = 4,
  kAbort = 5,
  kFinishRead = 6,  // release a read-only transaction's resources

  // Query shipping.
  kScan = 7,

  // Recovery support at workers (Chapter 5).
  kTableLock = 8,
  kTableUnlock = 9,

  // Coordinator-side services.
  kComingOnline = 10,   // recovering site joins pending transactions (§5.4.2)
  kResolveTxn = 11,     // ARIES in-doubt resolution (2PC restart)
  kTxnStateProbe = 12,  // backup coordinator consensus probe (§4.3.3)

  // Replies.
  kAck = 100,
  kVote = 101,
  kScanReply = 102,
  kResolveReply = 103,
  kProbeReply = 104,
};

/// kExecUpdate: run one logical update at a worker on behalf of txn.
struct ExecUpdateMsg {
  TxnId txn = kInvalidTxnId;
  SiteId coordinator = kInvalidSiteId;
  UpdateRequest request;

  Message Encode() const;
  static Result<ExecUpdateMsg> Decode(const Message& m);
};

/// kPrepare: phase-1 vote request; carries the participant list so workers
/// can run the consensus building protocol if the coordinator fails (§4.3.3).
struct PrepareMsg {
  TxnId txn = kInvalidTxnId;
  SiteId coordinator = kInvalidSiteId;
  std::vector<SiteId> participants;

  Message Encode() const;
  static Result<PrepareMsg> Decode(const Message& m);
};

/// kPrepareToCommit / kCommit: carry the commit time (§4.1: COMMIT messages
/// include the commit time for all tuples modified by the transaction).
/// `stable_ts` piggybacks the sender's snapshot low-water mark (the
/// authority's StableTime at send, see txn/snapshot_tracker.h) so workers
/// learn a fresh mark from ordinary commit traffic; 0 = no mark carried.
struct CommitTsMsg {
  MsgType type = MsgType::kCommit;
  TxnId txn = kInvalidTxnId;
  Timestamp commit_ts = 0;
  Timestamp stable_ts = 0;

  Message Encode() const;
  static Result<CommitTsMsg> Decode(const Message& m);
};

/// kAbort / kFinishRead / kResolveTxn / kTxnStateProbe: transaction id plus
/// the same piggybacked low-water mark as CommitTsMsg (abort-heavy traffic
/// must keep marks flowing too; 0 = no mark carried).
struct TxnMsg {
  MsgType type = MsgType::kAbort;
  TxnId txn = kInvalidTxnId;
  Timestamp stable_ts = 0;

  Message Encode() const;
  static Result<TxnMsg> Decode(const Message& m);
};

/// kScan: ship a scan plan to a site. `minimal_projection` returns only
/// (tuple_id, deletion_time, insertion_time) triples — the recovery
/// deletion queries of §5.3 and §5.4.1 need nothing more, which shrinks the
/// transfer; the insertion time lets the recovering site prune its local
/// UPDATE to the segments that can contain the matching versions.
///
/// `max_tuples` > 0 turns the scan into a bounded chunk request: the serving
/// site returns at most ~max_tuples rows in (insertion_ts, tuple_id) order,
/// starting strictly after the continuation cursor when `has_cursor` is set.
/// Chunks never split a group of versions sharing one (insertion_ts,
/// tuple_id) key, so a cursor always names a clean resume boundary (the
/// reply may exceed max_tuples by the size of one such tie group).
struct ScanMsg {
  ScanSpec spec;
  LockOwnerId owner = 0;
  bool with_page_locks = false;
  /// Snapshot read (the default read path): serve the kVisible scan at
  /// spec.as_of — a stable snapshot timestamp — with zero LockManager
  /// traffic. Recovering sites refuse such scans so readers fail fast and
  /// route to another replica instead of blocking on recovery. Takes
  /// precedence over with_page_locks.
  bool snapshot_read = false;
  bool minimal_projection = false;
  uint32_t max_tuples = 0;  // 0 = unbounded (single monolithic reply)
  bool has_cursor = false;
  Timestamp cursor_insertion_ts = 0;
  TupleId cursor_tuple_id = 0;
  /// Pinned insertion-time cap for a chunked stream. The serving site picks
  /// the cap on the first chunk (from its clock, when the spec carries no
  /// upper bound of its own) and returns it in the reply; the client echoes
  /// it here on every subsequent chunk so a long-running stream never widens
  /// into tuples inserted after the stream began. 0 = not pinned yet.
  Timestamp cap_insertion_ts = 0;

  Message Encode() const;
  static Result<ScanMsg> Decode(const Message& m);
};

/// One row of a minimal-projection scan reply.
struct IdDeletion {
  TupleId tuple_id = 0;
  Timestamp deletion_ts = 0;
  Timestamp insertion_ts = 0;

  bool operator==(const IdDeletion&) const = default;
};

/// kScanReply: materialized result set. For a chunked scan (`max_tuples` >
/// 0 in the request) `truncated` says more qualifying rows remain and
/// (last_insertion_ts, last_tuple_id) is the continuation cursor — the key
/// of the last row shipped, to be echoed back in the next request.
struct ScanReplyMsg {
  bool minimal = false;
  // Full mode: the executing object's physical schema plus tuples.
  Schema schema;
  /// Full mode only: ship `tuples` as dictionary/FOR-compressed column
  /// blocks instead of per-tuple row images. Purely a wire encoding —
  /// Decode rebuilds `tuples` either way, bit-identically — that shrinks
  /// recovery catch-up chunks for columnar tables.
  bool columnar = false;
  std::vector<Tuple> tuples;
  // Minimal mode: (tuple_id, deletion_time, insertion_time) triples.
  std::vector<IdDeletion> id_deletions;
  // Chunked-scan continuation state.
  bool truncated = false;
  Timestamp last_insertion_ts = 0;
  TupleId last_tuple_id = 0;
  /// The insertion-time cap the serving site pinned for this stream; echo it
  /// in the next chunk request's cap_insertion_ts. 0 = no cap to carry.
  Timestamp cap_insertion_ts = 0;

  Message Encode() const;
  static Result<ScanReplyMsg> Decode(const Message& m);
};

/// kTableLock / kTableUnlock: recovery's table-granularity read locks on
/// recovery objects (§5.4.1), owned by the recovering *site*.
struct TableLockMsg {
  MsgType type = MsgType::kTableLock;
  ObjectId object_id = 0;
  SiteId owner_site = kInvalidSiteId;

  Message Encode() const;
  static Result<TableLockMsg> Decode(const Message& m);
};

/// kComingOnline: "rec on S is coming online" (§5.4.2); the coordinator
/// forwards the relevant queued updates of every pending transaction to S
/// before replying "all done". Carries every recovered object's (table,
/// partition) so relevance can be checked per queued request.
struct ComingOnlineMsg {
  SiteId site = kInvalidSiteId;
  std::vector<std::pair<TableId, PartitionRange>> objects;

  Message Encode() const;
  static Result<ComingOnlineMsg> Decode(const Message& m);
};

struct VoteReply {
  bool yes = false;

  Message Encode() const;
  static Result<VoteReply> Decode(const Message& m);
};

/// kResolveReply: outcome of an in-doubt transaction.
struct ResolveReply {
  bool known = false;
  bool committed = false;
  Timestamp commit_ts = 0;

  Message Encode() const;
  static Result<ResolveReply> Decode(const Message& m);
};

/// kProbeReply: a worker's local state of a transaction, for the backup
/// coordinator's action table (Table 4.1).
struct ProbeReply {
  bool known = false;
  uint8_t phase = 0;  // TxnPhase
  bool voted_yes = false;
  Timestamp pending_commit_ts = 0;
  std::vector<SiteId> participants;

  Message Encode() const;
  static Result<ProbeReply> Decode(const Message& m);
};

/// Empty ACK.
Message AckMessage();

}  // namespace harbor

#endif  // HARBOR_CORE_MESSAGES_H_
