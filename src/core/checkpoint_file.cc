#include "core/checkpoint_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/byte_buffer.h"

namespace harbor {

namespace {
constexpr uint32_t kMagicV1 = 0x48524b50;  // "HRKP": no resume section
constexpr uint32_t kMagicV2 = 0x48524b32;  // "HRK2": + stream watermarks
constexpr uint32_t kMagicV3 = 0x48524b33;  // "HRK3": multi-stream watermarks
                                           // with per-stream windows
}  // namespace

Result<CheckpointRecord> ReadCheckpointRecord(const std::string& dir) {
  const std::string path = dir + "/checkpoint.meta";
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return CheckpointRecord{};  // blank slate
    return Status::IoError("open checkpoint: " +
                           std::string(std::strerror(errno)));
  }
  std::vector<uint8_t> buf;
  uint8_t chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  ::close(fd);
  ByteBufferReader in(buf);
  HARBOR_ASSIGN_OR_RETURN(uint32_t magic, in.ReadU32());
  if (magic != kMagicV1 && magic != kMagicV2 && magic != kMagicV3) {
    return Status::Corruption("bad checkpoint magic");
  }
  CheckpointRecord rec;
  HARBOR_ASSIGN_OR_RETURN(rec.global_time, in.ReadU64());
  HARBOR_ASSIGN_OR_RETURN(uint32_t count, in.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    HARBOR_ASSIGN_OR_RETURN(ObjectId obj, in.ReadU32());
    HARBOR_ASSIGN_OR_RETURN(Timestamp t, in.ReadU64());
    rec.per_object[obj] = t;
  }
  if (magic == kMagicV2) {
    // One single-stream watermark per object; upgrades to stream 0 over the
    // whole round range (window bounds 0).
    HARBOR_ASSIGN_OR_RETURN(uint32_t n, in.ReadU32());
    for (uint32_t i = 0; i < n; ++i) {
      HARBOR_ASSIGN_OR_RETURN(ObjectId obj, in.ReadU32());
      StreamResume r;
      HARBOR_ASSIGN_OR_RETURN(r.round_hwm, in.ReadU64());
      HARBOR_ASSIGN_OR_RETURN(r.insertion_ts, in.ReadU64());
      HARBOR_ASSIGN_OR_RETURN(r.tuple_id, in.ReadU64());
      rec.resume[obj].push_back(r);
    }
  } else if (magic == kMagicV3) {
    HARBOR_ASSIGN_OR_RETURN(uint32_t n, in.ReadU32());
    for (uint32_t i = 0; i < n; ++i) {
      HARBOR_ASSIGN_OR_RETURN(ObjectId obj, in.ReadU32());
      HARBOR_ASSIGN_OR_RETURN(uint32_t streams, in.ReadU32());
      for (uint32_t s = 0; s < streams; ++s) {
        StreamResume r;
        HARBOR_ASSIGN_OR_RETURN(r.round_hwm, in.ReadU64());
        HARBOR_ASSIGN_OR_RETURN(r.insertion_ts, in.ReadU64());
        HARBOR_ASSIGN_OR_RETURN(r.tuple_id, in.ReadU64());
        HARBOR_ASSIGN_OR_RETURN(r.stream_index, in.ReadU32());
        HARBOR_ASSIGN_OR_RETURN(r.window_lo, in.ReadU64());
        HARBOR_ASSIGN_OR_RETURN(r.window_hi, in.ReadU64());
        rec.resume[obj].push_back(r);
      }
    }
  }
  return rec;
}

Status WriteCheckpointRecord(const std::string& dir,
                             const CheckpointRecord& record) {
  ByteBufferWriter out;
  // Records without watermarks stay on the V1 format so checkpoint files
  // written by a normally-running site remain readable by older builds.
  // Records with watermarks are written as V3 (per-stream entries); V2
  // files remain readable and upgrade on the next write.
  bool any_resume = false;
  for (const auto& [obj, streams] : record.resume) {
    if (!streams.empty()) any_resume = true;
  }
  out.WriteU32(any_resume ? kMagicV3 : kMagicV1);
  out.WriteU64(record.global_time);
  out.WriteU32(static_cast<uint32_t>(record.per_object.size()));
  for (const auto& [obj, t] : record.per_object) {
    out.WriteU32(obj);
    out.WriteU64(t);
  }
  if (any_resume) {
    uint32_t objects = 0;
    for (const auto& [obj, streams] : record.resume) {
      if (!streams.empty()) ++objects;
    }
    out.WriteU32(objects);
    for (const auto& [obj, streams] : record.resume) {
      if (streams.empty()) continue;
      out.WriteU32(obj);
      out.WriteU32(static_cast<uint32_t>(streams.size()));
      for (const StreamResume& r : streams) {
        out.WriteU64(r.round_hwm);
        out.WriteU64(r.insertion_ts);
        out.WriteU64(r.tuple_id);
        out.WriteU32(r.stream_index);
        out.WriteU64(r.window_lo);
        out.WriteU64(r.window_hi);
      }
    }
  }
  const std::string path = dir + "/checkpoint.meta";
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open checkpoint tmp: " +
                           std::string(std::strerror(errno)));
  }
  ssize_t n = ::write(fd, out.data().data(), out.size());
  ::fsync(fd);
  ::close(fd);
  if (n != static_cast<ssize_t>(out.size())) {
    return Status::IoError("short checkpoint write");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename checkpoint: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace harbor
