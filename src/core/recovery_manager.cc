#include "core/recovery_manager.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "core/messages.h"
#include "exec/seq_scan.h"
#include "fault/fault_injector.h"
#include "obs/observer.h"

namespace harbor {

RecoveryManager::RecoveryManager(Worker* worker, RecoveryOptions options)
    : worker_(worker), options_(std::move(options)) {}

bool RecoveryManager::BuddyUsable(SiteId site) const {
  return site != worker_->site_id() &&
         worker_->liveness()->IsOnline(site);
}

Status RecoveryManager::ComputeCover(ObjectPlan* plan) {
  HARBOR_ASSIGN_OR_RETURN(
      plan->cover,
      worker_->global_catalog()->PlanCover(
          plan->obj->table_id, plan->obj->partition, worker_->site_id(),
          [this](SiteId s) { return BuddyUsable(s); }));
  return Status::OK();
}

// ------------------------------------------------------------- Phase 1

Status RecoveryManager::RunPhase1(ObjectPlan* plan) {
  HARBOR_FAULT_POINT("recovery.phase1.begin", worker_->site_id());
  Stopwatch watch;
  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;

  // DELETE LOCALLY FROM rec SEE DELETED
  //   WHERE insertion_time > T_checkpoint OR insertion_time = uncommitted
  // (the uncommitted sentinel is numerically > any checkpoint, §5.2).
  {
    ScanSpec spec;
    spec.object_id = obj->object_id;
    spec.mode = ScanMode::kSeeDeleted;
    spec.has_insertion_after = true;
    spec.insertion_after = plan->checkpoint;
    SeqScanOperator scan(store, obj, std::move(spec));
    HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> victims, CollectAll(&scan));
    for (const Tuple& t : victims) {
      HARBOR_RETURN_NOT_OK(store->PhysicalDelete(obj, t.record_id()));
    }
    plan->stats.phase1_removed = victims.size();
  }

  // UPDATE LOCALLY rec SET deletion_time = 0 SEE DELETED
  //   WHERE deletion_time > T_checkpoint
  {
    ScanSpec spec;
    spec.object_id = obj->object_id;
    spec.mode = ScanMode::kSeeDeleted;
    spec.has_deletion_after = true;
    spec.deletion_after = plan->checkpoint;
    SeqScanOperator scan(store, obj, std::move(spec));
    HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> deleted, CollectAll(&scan));
    for (const Tuple& t : deleted) {
      HARBOR_RETURN_NOT_OK(
          store->SetDeletionTs(obj, t.record_id(), kNotDeleted));
    }
    plan->stats.phase1_undeleted = deleted.size();
  }

  plan->stats.phase1_seconds = watch.ElapsedSeconds();
  if (obs::Enabled()) {
    const SiteId self = worker_->site_id();
    obs::Observe(self, obs::HistogramId::kRecoveryPhase1Ns,
                 watch.ElapsedNanos());
    obs::Count(self, obs::CounterId::kRecoveryPhase1Removed,
               static_cast<int64_t>(plan->stats.phase1_removed));
    obs::Count(self, obs::CounterId::kRecoveryPhase1Undeleted,
               static_cast<int64_t>(plan->stats.phase1_undeleted));
    obs::Trace(self, "recovery.phase1.done", 0,
               static_cast<int64_t>(obj->object_id),
               static_cast<int64_t>(plan->stats.phase1_removed +
                                    plan->stats.phase1_undeleted));
  }
  return Status::OK();
}

// ------------------------------------------------------------- Phase 2

Status RecoveryManager::ApplyRemoteDeletions(ObjectPlan* plan,
                                             const RecoveryObject& piece,
                                             Timestamp from_exclusive,
                                             Timestamp hwm, bool historical,
                                             size_t* copied) {
  // SELECT REMOTELY tuple_id, deletion_time FROM recovery_object
  //   SEE DELETED [HISTORICAL WITH TIME hwm]
  //   WHERE recovery_predicate AND insertion_time <= from
  //     AND deletion_time > from
  ScanMsg scan;
  scan.spec.object_id = piece.object_id;
  scan.spec.mode = historical ? ScanMode::kSeeDeletedHistorical
                              : ScanMode::kSeeDeleted;
  scan.spec.as_of = hwm;
  scan.spec.has_insertion_at_or_before = true;
  scan.spec.insertion_at_or_before = from_exclusive;
  scan.spec.has_deletion_after = true;
  scan.spec.deletion_after = from_exclusive;
  scan.spec.range = piece.predicate;
  scan.minimal_projection = true;
  HARBOR_ASSIGN_OR_RETURN(
      Message reply,
      worker_->network()->Call(worker_->site_id(), piece.site,
                               scan.Encode()));
  HARBOR_ASSIGN_OR_RETURN(ScanReplyMsg decoded, ScanReplyMsg::Decode(reply));

  if (decoded.id_deletions.empty()) return Status::OK();

  // UPDATE LOCALLY rec SET deletion_time = del_time
  //   WHERE tuple_id = tup_id AND deletion_time = 0
  // The matching local version shares the remote version's insertion time,
  // so the scan below prunes to the segments whose insertion range covers
  // the shipped timestamps — the local side of recovery pays per *affected
  // historical segment*, exactly like the remote side (§6.4.2).
  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;
  std::unordered_map<TupleId, Timestamp> wanted;
  Timestamp lo = decoded.id_deletions.front().insertion_ts;
  Timestamp hi = lo;
  for (const IdDeletion& d : decoded.id_deletions) {
    wanted.emplace(d.tuple_id, d.deletion_ts);
    lo = std::min(lo, d.insertion_ts);
    hi = std::max(hi, d.insertion_ts);
  }
  ScanSpec local;
  local.object_id = obj->object_id;
  local.mode = ScanMode::kSeeDeleted;
  local.has_insertion_after = true;
  local.insertion_after = lo - 1;
  local.has_insertion_at_or_before = true;
  local.insertion_at_or_before = hi;
  SeqScanOperator local_scan(store, obj, std::move(local));
  HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> candidates,
                          CollectAll(&local_scan));
  for (const Tuple& t : candidates) {
    if (t.deletion_ts() != kNotDeleted) continue;  // older version
    auto it = wanted.find(t.tuple_id());
    if (it == wanted.end()) continue;
    HARBOR_RETURN_NOT_OK(store->SetDeletionTs(obj, t.record_id(), it->second));
    (*copied)++;
  }
  return Status::OK();
}

Status RecoveryManager::CopyRemoteInsertions(ObjectPlan* plan,
                                             const RecoveryObject& piece,
                                             Timestamp from_exclusive,
                                             Timestamp hwm, bool historical,
                                             size_t* copied) {
  // INSERT LOCALLY INTO rec
  //   (SELECT REMOTELY * FROM recovery_object SEE DELETED
  //      [HISTORICAL WITH TIME hwm]
  //      WHERE recovery_predicate AND insertion_time > from
  //        [AND insertion_time != uncommitted])
  ScanMsg scan;
  scan.spec.object_id = piece.object_id;
  scan.spec.mode = historical ? ScanMode::kSeeDeletedHistorical
                              : ScanMode::kSeeDeleted;
  scan.spec.as_of = hwm;
  scan.spec.has_insertion_after = true;
  scan.spec.insertion_after = from_exclusive;
  scan.spec.exclude_uncommitted = !historical;  // §5.4.1's extra check
  scan.spec.range = piece.predicate;
  HARBOR_ASSIGN_OR_RETURN(
      Message reply,
      worker_->network()->Call(worker_->site_id(), piece.site,
                               scan.Encode()));
  HARBOR_ASSIGN_OR_RETURN(ScanReplyMsg decoded, ScanReplyMsg::Decode(reply));

  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;
  // Replicas may store columns in different orders; copy by name (§3.1).
  HARBOR_ASSIGN_OR_RETURN(std::vector<size_t> mapping,
                          obj->schema.MappingFrom(decoded.schema));
  for (const Tuple& t : decoded.tuples) {
    HARBOR_RETURN_NOT_OK(
        store->InsertCommittedTuple(obj, t.RemapColumns(mapping)).status());
    (*copied)++;
  }
  return Status::OK();
}

Status RecoveryManager::RunPhase2Round(ObjectPlan* plan, Timestamp hwm) {
  for (const RecoveryObject& piece : plan->cover) {
    Stopwatch del_watch;
    HARBOR_RETURN_NOT_OK(ApplyRemoteDeletions(
        plan, piece, plan->checkpoint, hwm, /*historical=*/true,
        &plan->stats.phase2_deletions_copied));
    plan->stats.phase2_delete_seconds += del_watch.ElapsedSeconds();

    Stopwatch ins_watch;
    HARBOR_RETURN_NOT_OK(CopyRemoteInsertions(
        plan, piece, plan->checkpoint, hwm, /*historical=*/true,
        &plan->stats.phase2_tuples_copied));
    plan->stats.phase2_insert_seconds += ins_watch.ElapsedSeconds();
  }
  return Status::OK();
}

Status RecoveryManager::RunPhase2(ObjectPlan* plan) {
  TimestampAuthority* authority = worker_->authority();
  Stopwatch watch;
  for (int round = 0; round < options_.max_phase2_rounds; ++round) {
    HARBOR_FAULT_POINT("recovery.phase2.round", worker_->site_id());
    const Timestamp hwm = authority->StableTime();
    obs::Trace(worker_->site_id(), "recovery.phase2.round", 0, round + 1,
               static_cast<int64_t>(hwm));
    if (hwm <= plan->checkpoint && round > 0) break;
    HARBOR_RETURN_NOT_OK(ComputeCover(plan));
    if (hwm > plan->checkpoint) {
      HARBOR_RETURN_NOT_OK(RunPhase2Round(plan, hwm));
    }
    plan->stats.phase2_rounds = round + 1;
    plan->hwm = hwm;
    // rec is now consistent up to the HWM: flush and record an
    // object-granularity checkpoint so a crash during recovery resumes
    // from here (§5.3).
    HARBOR_RETURN_NOT_OK(worker_->pool()->FlushAll());
    HARBOR_RETURN_NOT_OK(plan->obj->file->SyncHeaderIfDirty());
    HARBOR_RETURN_NOT_OK(
        worker_->WriteObjectCheckpoint(plan->obj->object_id, hwm));
    HARBOR_FAULT_POINT("recovery.phase2.after_checkpoint",
                       worker_->site_id());
    plan->checkpoint = hwm;
    // Stop iterating once we are close enough to the present for Phase 3's
    // locked queries to be cheap.
    if (authority->StableTime() - hwm <= options_.phase2_lag_threshold) break;
  }
  if (obs::Enabled()) {
    const SiteId self = worker_->site_id();
    obs::Observe(self, obs::HistogramId::kRecoveryPhase2Ns,
                 watch.ElapsedNanos());
    obs::Count(self, obs::CounterId::kRecoveryPhase2Tuples,
               static_cast<int64_t>(plan->stats.phase2_tuples_copied));
    obs::Count(self, obs::CounterId::kRecoveryPhase2Deletions,
               static_cast<int64_t>(plan->stats.phase2_deletions_copied));
    obs::SetGauge(self, obs::GaugeId::kRecoveryPhase2Rounds,
                  plan->stats.phase2_rounds);
    obs::Trace(self, "recovery.phase2.done", 0,
               static_cast<int64_t>(plan->obj->object_id),
               static_cast<int64_t>(plan->hwm));
  }
  return Status::OK();
}

// ------------------------------------------------------------- Phase 3

Status RecoveryManager::RunPhase3(std::vector<ObjectPlan>* plans,
                                  double* out_seconds) {
  Stopwatch watch;
  Network* net = worker_->network();
  const SiteId self = worker_->site_id();
  obs::Trace(self, "recovery.phase3.begin", 0,
             static_cast<int64_t>(plans->size()));

  // Fresh covers (liveness may have changed since Phase 2).
  for (ObjectPlan& plan : *plans) {
    HARBOR_RETURN_NOT_OK(ComputeCover(&plan));
  }

  // Acquire a read lock on EVERY recovery object at once (§5.4.1), in a
  // global order to avoid deadlocks between concurrently recovering sites;
  // retry until all are granted.
  std::vector<std::pair<SiteId, ObjectId>> locks;
  for (const ObjectPlan& plan : *plans) {
    for (const RecoveryObject& piece : plan.cover) {
      locks.emplace_back(piece.site, piece.object_id);
    }
  }
  std::sort(locks.begin(), locks.end());
  locks.erase(std::unique(locks.begin(), locks.end()), locks.end());

  Status acquired = Status::OK();
  for (int attempt = 0; attempt < 30; ++attempt) {
    acquired = Status::OK();
    std::vector<std::pair<SiteId, ObjectId>> held;
    for (const auto& [site, object] : locks) {
      TableLockMsg msg;
      msg.type = MsgType::kTableLock;
      msg.object_id = object;
      msg.owner_site = self;
      auto r = net->Call(self, site, msg.Encode());
      if (!r.ok()) {
        acquired = r.status();
        break;
      }
      held.emplace_back(site, object);
    }
    if (acquired.ok()) break;
    for (const auto& [site, object] : held) {
      TableLockMsg msg;
      msg.type = MsgType::kTableUnlock;
      msg.object_id = object;
      msg.owner_site = self;
      (void)net->Call(self, site, msg.Encode());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  HARBOR_RETURN_NOT_OK(acquired);

  // A recovering site dying while it holds its buddies' table read locks is
  // §5.5.1's hard case: this point deliberately returns WITHOUT the unlock
  // loop below (crash action only) — the buddies' crash subscribers must
  // release the orphaned recovery locks.
  HARBOR_FAULT_POINT("recovery.phase3.locks_held", self);

  // With the locks held no pending update transaction touching these
  // objects can commit; copy the final delta with ordinary (non-historical)
  // SEE DELETED queries (§5.4.1).
  Status st = Status::OK();
  for (ObjectPlan& plan : *plans) {
    for (const RecoveryObject& piece : plan.cover) {
      st = ApplyRemoteDeletions(&plan, piece, plan.hwm, 0,
                                /*historical=*/false,
                                &plan.stats.phase3_deletions_copied);
      if (!st.ok()) break;
      st = CopyRemoteInsertions(&plan, piece, plan.hwm, 0,
                                /*historical=*/false,
                                &plan.stats.phase3_tuples_copied);
      if (!st.ok()) break;
    }
    if (!st.ok()) break;
  }

  Timestamp checkpoint_time = worker_->authority()->Now() - 1;
  if (st.ok()) {
    st = worker_->pool()->FlushAll();
  }
  if (st.ok()) {
    for (ObjectPlan& plan : *plans) {
      st = plan.obj->file->SyncHeaderIfDirty();
      if (!st.ok()) break;
      st = worker_->WriteObjectCheckpoint(plan.obj->object_id,
                                          checkpoint_time);
      if (!st.ok()) break;
    }
  }

  // Join pending transactions: tell every coordinator that rec on S is
  // coming online; the reply is the "all done" of Figure 5-4.
  if (st.ok()) {
    // Funneled into st (not the return macro) so the lock release below
    // still runs and a clean retry is possible.
    if (fault::FaultInjector* fi = fault::FaultInjector::Current()) {
      st = fi->OnPoint("recovery.phase3.coming_online", self,
                       fault::CrashMode::kSync);
    }
  }
  if (st.ok()) {
    ComingOnlineMsg online;
    online.site = self;
    for (const ObjectPlan& plan : *plans) {
      online.objects.emplace_back(plan.obj->table_id, plan.obj->partition);
    }
    for (SiteId coordinator : options_.coordinators) {
      auto r = net->Call(self, coordinator, online.Encode());
      if (!r.ok() && !r.status().IsUnavailable()) {
        st = r.status();
        break;
      }
    }
  }

  // Release the recovery locks whether or not we succeeded; a failure path
  // restarts recovery and must not leave buddies blocked (§5.5).
  for (const auto& [site, object] : locks) {
    TableLockMsg msg;
    msg.type = MsgType::kTableUnlock;
    msg.object_id = object;
    msg.owner_site = self;
    (void)net->Call(self, site, msg.Encode());
  }
  HARBOR_RETURN_NOT_OK(st);

  // All objects recovered: collapse to a single global checkpoint (§5.3).
  HARBOR_RETURN_NOT_OK(worker_->PromoteGlobalCheckpoint(checkpoint_time));
  worker_->liveness()->Set(self, SiteState::kOnline);
  *out_seconds = watch.ElapsedSeconds();
  if (obs::Enabled()) {
    obs::Observe(self, obs::HistogramId::kRecoveryPhase3Ns,
                 watch.ElapsedNanos());
    int64_t tuples = 0;
    int64_t deletions = 0;
    for (const ObjectPlan& plan : *plans) {
      tuples += static_cast<int64_t>(plan.stats.phase3_tuples_copied);
      deletions += static_cast<int64_t>(plan.stats.phase3_deletions_copied);
    }
    obs::Count(self, obs::CounterId::kRecoveryPhase3Tuples, tuples);
    obs::Count(self, obs::CounterId::kRecoveryPhase3Deletions, deletions);
    obs::Trace(self, "recovery.phase3.done", 0, tuples, deletions);
  }
  return Status::OK();
}

// --------------------------------------------------------------- driver

Result<RecoveryStats> RecoveryManager::Recover() {
  Status last = Status::OK();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (!worker_->running()) {
      // The recovering site itself died mid-recovery (its runtime is gone);
      // a retry would touch freed state. The caller restarts the site and
      // runs a fresh RecoveryManager.
      last = Status::Unavailable("recovering site went down mid-recovery");
      break;
    }
    worker_->PauseCheckpoints(true);
    obs::Trace(worker_->site_id(), "recovery.begin", 0, attempt + 1);
    RecoveryStats stats;
    Stopwatch total;

    HARBOR_ASSIGN_OR_RETURN(CheckpointRecord ckpt, worker_->LastCheckpoint());
    std::vector<ObjectPlan> plans;
    for (TableObject* obj : worker_->local_catalog()->objects()) {
      ObjectPlan plan;
      plan.obj = obj;
      plan.checkpoint = ckpt.TimeFor(obj->object_id);
      plan.hwm = plan.checkpoint;
      plan.stats.object_id = obj->object_id;
      plans.push_back(std::move(plan));
    }

    // Phases 1-2, per object — in parallel when configured (§5.1: "multiple
    // rec objects ... recovered in parallel; each object proceeds through
    // the phases at its own pace").
    auto run_offline_phases = [this](ObjectPlan* plan) -> Status {
      HARBOR_RETURN_NOT_OK(RunPhase1(plan));
      return RunPhase2(plan);
    };
    Stopwatch offline_watch;
    std::vector<Status> results(plans.size(), Status::OK());
    if (options_.parallel && plans.size() > 1) {
      std::vector<std::thread> threads;
      threads.reserve(plans.size());
      for (size_t i = 0; i < plans.size(); ++i) {
        threads.emplace_back([&, i] { results[i] = run_offline_phases(&plans[i]); });
      }
      for (std::thread& t : threads) t.join();
    } else {
      for (size_t i = 0; i < plans.size(); ++i) {
        results[i] = run_offline_phases(&plans[i]);
      }
    }
    const double offline_seconds = offline_watch.ElapsedSeconds();
    last = Status::OK();
    for (const Status& s : results) {
      if (!s.ok()) last = s;
    }
    if (!last.ok()) {
      // Recovery buddy failed mid-phase: restart with a fresh plan (§5.5.2)
      // from the per-object checkpoints already recorded.
      continue;
    }

    double phase3_seconds = 0;
    last = RunPhase3(&plans, &phase3_seconds);
    if (!last.ok()) continue;

    for (const ObjectPlan& plan : plans) {
      stats.objects.push_back(plan.stats);
      stats.phase1_seconds =
          std::max(stats.phase1_seconds, plan.stats.phase1_seconds);
    }
    stats.phase2_seconds = offline_seconds - stats.phase1_seconds;
    if (stats.phase2_seconds < 0) stats.phase2_seconds = 0;
    stats.phase3_seconds = phase3_seconds;
    stats.total_seconds = total.ElapsedSeconds();
    worker_->PauseCheckpoints(false);
    obs::Trace(worker_->site_id(), "recovery.done", 0,
               static_cast<int64_t>(stats.total_seconds * 1e9));
    return stats;
  }
  worker_->PauseCheckpoints(false);
  HARBOR_RETURN_NOT_OK(last);
  return Status::Internal("recovery retries exhausted");
}

}  // namespace harbor
