#include "core/recovery_manager.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "core/messages.h"
#include "exec/seq_scan.h"
#include "fault/fault_injector.h"
#include "obs/observer.h"

namespace harbor {

RecoveryManager::RecoveryManager(Worker* worker, RecoveryOptions options)
    : worker_(worker), options_(std::move(options)) {}

bool RecoveryManager::BuddyUsable(SiteId site) const {
  return site != worker_->site_id() &&
         worker_->liveness()->IsOnline(site);
}

Status RecoveryManager::ComputeCover(ObjectPlan* plan) {
  HARBOR_ASSIGN_OR_RETURN(
      plan->cover,
      worker_->global_catalog()->PlanCover(
          plan->obj->table_id, plan->obj->partition, worker_->site_id(),
          [this](SiteId s) { return BuddyUsable(s); }));
  return Status::OK();
}

// ------------------------------------------------------------- Phase 1

Status RecoveryManager::RunPhase1(ObjectPlan* plan) {
  HARBOR_FAULT_POINT("recovery.phase1.begin", worker_->site_id());
  Stopwatch watch;
  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;

  // DELETE LOCALLY FROM rec SEE DELETED
  //   WHERE insertion_time > T_keep OR insertion_time = uncommitted
  // (the uncommitted sentinel is numerically > any checkpoint, §5.2).
  // Normally T_keep is the object checkpoint; with a durable mid-stream
  // watermark it is the watermark's insertion_ts — chunks applied and
  // flushed before the previous attempt died stay, so the resumed stream
  // does not re-copy them.
  const bool resuming = plan->resume.has_value();
  const Timestamp keep_through =
      resuming ? plan->resume->insertion_ts : plan->checkpoint;
  {
    ScanSpec spec;
    spec.object_id = obj->object_id;
    spec.mode = ScanMode::kSeeDeleted;
    spec.has_insertion_after = true;
    spec.insertion_after = keep_through;
    SeqScanOperator scan(store, obj, std::move(spec));
    HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> victims, CollectAll(&scan));
    for (const Tuple& t : victims) {
      HARBOR_RETURN_NOT_OK(store->PhysicalDelete(obj, t.record_id()));
    }
    plan->stats.phase1_removed = victims.size();
  }

  // The watermark names the last complete (insertion_ts, tuple_id) group:
  // versions AT the watermark timestamp but with tuple ids beyond the
  // cursor belong to later, possibly-unflushed chunks. Remove them so the
  // resumed stream (which re-ships everything strictly past the cursor)
  // cannot create duplicates.
  if (resuming) {
    ScanSpec spec;
    spec.object_id = obj->object_id;
    spec.mode = ScanMode::kSeeDeleted;
    if (keep_through > 0) {
      spec.has_insertion_after = true;
      spec.insertion_after = keep_through - 1;
    }
    spec.has_insertion_at_or_before = true;
    spec.insertion_at_or_before = keep_through;
    SeqScanOperator scan(store, obj, std::move(spec));
    HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> boundary, CollectAll(&scan));
    for (const Tuple& t : boundary) {
      if (t.tuple_id() <= plan->resume->tuple_id) continue;
      HARBOR_RETURN_NOT_OK(store->PhysicalDelete(obj, t.record_id()));
      plan->stats.phase1_removed++;
    }
  }

  // UPDATE LOCALLY rec SET deletion_time = 0 SEE DELETED
  //   WHERE deletion_time > T_checkpoint
  {
    ScanSpec spec;
    spec.object_id = obj->object_id;
    spec.mode = ScanMode::kSeeDeleted;
    spec.has_deletion_after = true;
    spec.deletion_after = plan->checkpoint;
    SeqScanOperator scan(store, obj, std::move(spec));
    HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> deleted, CollectAll(&scan));
    for (const Tuple& t : deleted) {
      HARBOR_RETURN_NOT_OK(
          store->SetDeletionTs(obj, t.record_id(), kNotDeleted));
    }
    plan->stats.phase1_undeleted = deleted.size();
  }

  plan->stats.phase1_seconds = watch.ElapsedSeconds();
  if (obs::Enabled()) {
    const SiteId self = worker_->site_id();
    obs::Observe(self, obs::HistogramId::kRecoveryPhase1Ns,
                 watch.ElapsedNanos());
    obs::Count(self, obs::CounterId::kRecoveryPhase1Removed,
               static_cast<int64_t>(plan->stats.phase1_removed));
    obs::Count(self, obs::CounterId::kRecoveryPhase1Undeleted,
               static_cast<int64_t>(plan->stats.phase1_undeleted));
    obs::Trace(self, "recovery.phase1.done", 0,
               static_cast<int64_t>(obj->object_id),
               static_cast<int64_t>(plan->stats.phase1_removed +
                                    plan->stats.phase1_undeleted));
  }
  return Status::OK();
}

// ------------------------------------------------------------- Phase 2

Status RecoveryManager::StreamScan(
    const RecoveryObject& piece, ScanMsg msg,
    const std::function<Status(ScanReplyMsg&)>& apply) {
  Network* net = worker_->network();
  const SiteId self = worker_->site_id();
  msg.max_tuples = static_cast<uint32_t>(options_.stream_chunk_tuples);
  if (msg.max_tuples == 0) {
    HARBOR_ASSIGN_OR_RETURN(Message reply,
                            net->Call(self, piece.site, msg.Encode()));
    if (obs::Enabled()) {
      obs::Observe(self, obs::HistogramId::kRecoveryChunkBytes,
                   reply.WireBytes());
    }
    HARBOR_ASSIGN_OR_RETURN(ScanReplyMsg decoded, ScanReplyMsg::Decode(reply));
    return apply(decoded);
  }
  // Double-buffered pipeline: while chunk N applies locally, chunk N+1 is
  // already on the wire. Each reply carries the next cursor, so the fetch
  // for N+1 can be issued before N is consumed.
  std::future<Result<Message>> inflight =
      net->CallAsync(self, piece.site, msg.Encode());
  bool first = true;
  while (true) {
    const int64_t wait_start = obs::Enabled() ? NowNanos() : 0;
    Result<Message> raw = inflight.get();
    if (obs::Enabled() && !first) {
      // Fetch wait not hidden behind the previous chunk's apply — 0 when
      // the pipeline fully overlaps transfer with apply.
      obs::Observe(self, obs::HistogramId::kRecoveryChunkStallNs,
                   NowNanos() - wait_start);
    }
    first = false;
    HARBOR_RETURN_NOT_OK(raw.status());
    const int64_t wire_bytes = raw->WireBytes();
    HARBOR_ASSIGN_OR_RETURN(ScanReplyMsg decoded, ScanReplyMsg::Decode(*raw));
    if (decoded.truncated) {
      msg.has_cursor = true;
      msg.cursor_insertion_ts = decoded.last_insertion_ts;
      msg.cursor_tuple_id = decoded.last_tuple_id;
      // Echo the serving site's pinned insertion-time cap so the stream
      // stays bounded to tuples that existed when it began.
      if (decoded.cap_insertion_ts > 0) {
        msg.cap_insertion_ts = decoded.cap_insertion_ts;
      }
      inflight = net->CallAsync(self, piece.site, msg.Encode());
    }
    if (obs::Enabled()) {
      obs::Count(self, obs::CounterId::kRecoveryChunks);
      obs::Observe(self, obs::HistogramId::kRecoveryChunkBytes, wire_bytes);
      Stopwatch apply_watch;
      HARBOR_RETURN_NOT_OK(apply(decoded));
      obs::Observe(self, obs::HistogramId::kRecoveryChunkApplyNs,
                   apply_watch.ElapsedNanos());
    } else {
      HARBOR_RETURN_NOT_OK(apply(decoded));
    }
    if (!decoded.truncated) return Status::OK();
  }
}

Status RecoveryManager::ApplyRemoteDeletions(ObjectPlan* plan,
                                             const RecoveryObject& piece,
                                             Timestamp ins_at_or_before,
                                             Timestamp del_after,
                                             Timestamp hwm, bool historical,
                                             size_t* copied) {
  // SELECT REMOTELY tuple_id, deletion_time FROM recovery_object
  //   SEE DELETED [HISTORICAL WITH TIME hwm]
  //   WHERE recovery_predicate AND insertion_time <= ins_bound
  //     AND deletion_time > from
  // The two bounds coincide except on a resumed round, where the insertion
  // bound widens to the watermark so deletions of already-copied tuples
  // (undone by Phase 1) are re-applied.
  ScanMsg scan;
  scan.spec.object_id = piece.object_id;
  scan.spec.mode = historical ? ScanMode::kSeeDeletedHistorical
                              : ScanMode::kSeeDeleted;
  scan.spec.as_of = hwm;
  scan.spec.has_insertion_at_or_before = true;
  scan.spec.insertion_at_or_before = ins_at_or_before;
  scan.spec.has_deletion_after = true;
  scan.spec.deletion_after = del_after;
  scan.spec.range = piece.predicate;
  scan.minimal_projection = true;
  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;
  return StreamScan(piece, std::move(scan), [&](ScanReplyMsg& decoded) {
    if (decoded.id_deletions.empty()) return Status::OK();

    // UPDATE LOCALLY rec SET deletion_time = del_time
    //   WHERE tuple_id = tup_id AND deletion_time = 0
    // The matching local version shares the remote version's insertion
    // time, so the scan below prunes to the segments whose insertion range
    // covers the shipped timestamps — the local side of recovery pays per
    // *affected historical segment*, exactly like the remote side (§6.4.2).
    std::unordered_map<TupleId, Timestamp> wanted;
    Timestamp lo = decoded.id_deletions.front().insertion_ts;
    Timestamp hi = lo;
    for (const IdDeletion& d : decoded.id_deletions) {
      wanted.emplace(d.tuple_id, d.deletion_ts);
      lo = std::min(lo, d.insertion_ts);
      hi = std::max(hi, d.insertion_ts);
    }
    ScanSpec local;
    local.object_id = obj->object_id;
    local.mode = ScanMode::kSeeDeleted;
    if (lo > 0) {
      // lo == 0 must NOT set insertion_after = lo - 1: the uint64 wraps to
      // UINT64_MAX and the scan silently matches nothing, dropping every
      // shipped deletion.
      local.has_insertion_after = true;
      local.insertion_after = lo - 1;
    }
    local.has_insertion_at_or_before = true;
    local.insertion_at_or_before = hi;
    SeqScanOperator local_scan(store, obj, std::move(local));
    HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> candidates,
                            CollectAll(&local_scan));
    for (const Tuple& t : candidates) {
      if (t.deletion_ts() != kNotDeleted) continue;  // older version
      auto it = wanted.find(t.tuple_id());
      if (it == wanted.end()) continue;
      HARBOR_RETURN_NOT_OK(
          store->SetDeletionTs(obj, t.record_id(), it->second));
      (*copied)++;
    }
    return Status::OK();
  });
}

Status RecoveryManager::CopyRemoteInsertions(ObjectPlan* plan,
                                             const RecoveryObject& piece,
                                             Timestamp from_exclusive,
                                             Timestamp hwm, bool historical,
                                             bool durable_watermarks,
                                             size_t* copied) {
  // INSERT LOCALLY INTO rec
  //   (SELECT REMOTELY * FROM recovery_object SEE DELETED
  //      [HISTORICAL WITH TIME hwm]
  //      WHERE recovery_predicate AND insertion_time > from
  //        [AND insertion_time != uncommitted])
  ScanMsg scan;
  scan.spec.object_id = piece.object_id;
  scan.spec.mode = historical ? ScanMode::kSeeDeletedHistorical
                              : ScanMode::kSeeDeleted;
  scan.spec.as_of = hwm;
  scan.spec.has_insertion_after = true;
  scan.spec.insertion_after = from_exclusive;
  scan.spec.exclude_uncommitted = !historical;  // §5.4.1's extra check
  scan.spec.range = piece.predicate;
  const SiteId self = worker_->site_id();
  if (durable_watermarks && plan->resume.has_value()) {
    // Resume the interrupted stream strictly past the durable watermark;
    // Phase 1 kept everything at or below it.
    scan.has_cursor = true;
    scan.cursor_insertion_ts = plan->resume->insertion_ts;
    scan.cursor_tuple_id = plan->resume->tuple_id;
    obs::Count(self, obs::CounterId::kRecoveryStreamResumes);
    obs::Trace(self, "recovery.stream.resume", 0,
               static_cast<int64_t>(plan->obj->object_id),
               static_cast<int64_t>(plan->resume->insertion_ts));
  }
  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;
  int chunks_since_mark = 0;
  return StreamScan(piece, std::move(scan), [&](ScanReplyMsg& decoded) {
    if (durable_watermarks) {
      HARBOR_FAULT_POINT("recovery.phase2.chunk", self);
    }
    // Replicas may store columns in different orders; copy by name (§3.1).
    HARBOR_ASSIGN_OR_RETURN(std::vector<size_t> mapping,
                            obj->schema.MappingFrom(decoded.schema));
    for (const Tuple& t : decoded.tuples) {
      HARBOR_RETURN_NOT_OK(
          store->InsertCommittedTuple(obj, t.RemapColumns(mapping)).status());
      (*copied)++;
    }
    if (durable_watermarks && decoded.truncated && !decoded.tuples.empty() &&
        options_.watermark_interval_chunks > 0 &&
        ++chunks_since_mark >= options_.watermark_interval_chunks) {
      chunks_since_mark = 0;
      // Durability order: the copied pages must be on disk before the
      // watermark that claims them — the chunk-granularity version of
      // §5.3's checkpoint rule.
      HARBOR_RETURN_NOT_OK(worker_->pool()->FlushAll());
      HARBOR_RETURN_NOT_OK(obj->file->SyncHeaderIfDirty());
      const StreamResume mark{hwm, decoded.last_insertion_ts,
                              decoded.last_tuple_id};
      HARBOR_RETURN_NOT_OK(worker_->WriteObjectResume(obj->object_id, mark));
      plan->resume = mark;
    }
    return Status::OK();
  });
}

Status RecoveryManager::DiscardResume(ObjectPlan* plan) {
  // The watermark names a position in ONE buddy's key stream; with a
  // multi-piece cover the pieces' key ranges interleave and the cursor is
  // meaningless. Wipe the partially-copied range and restart the round
  // from the object checkpoint.
  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;
  ScanSpec spec;
  spec.object_id = obj->object_id;
  spec.mode = ScanMode::kSeeDeleted;
  spec.has_insertion_after = true;
  spec.insertion_after = plan->checkpoint;
  spec.has_insertion_at_or_before = true;
  spec.insertion_at_or_before = plan->resume->insertion_ts;
  SeqScanOperator scan(store, obj, std::move(spec));
  HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> victims, CollectAll(&scan));
  for (const Tuple& t : victims) {
    HARBOR_RETURN_NOT_OK(store->PhysicalDelete(obj, t.record_id()));
  }
  plan->resume.reset();
  // Re-recording the unchanged checkpoint durably drops the resume entry.
  return worker_->WriteObjectCheckpoint(obj->object_id, plan->checkpoint);
}

Status RecoveryManager::RunPhase2Round(ObjectPlan* plan, Timestamp hwm) {
  const Timestamp from = plan->checkpoint;
  const bool resuming = plan->resume.has_value();
  // On a resumed round the deletion pass widens its insertion bound to the
  // watermark: Phase 1 undid deletion times > checkpoint on the already-
  // copied tuples, and the resumed insertion stream will not re-ship them.
  const Timestamp del_ins_bound =
      resuming ? std::max(from, plan->resume->insertion_ts) : from;
  // A durable watermark is only meaningful for a single-piece cover (one
  // stream, one cursor); multi-piece resumes were discarded by the caller.
  const bool durable_watermarks = plan->cover.size() == 1;
  for (const RecoveryObject& piece : plan->cover) {
    Stopwatch del_watch;
    HARBOR_RETURN_NOT_OK(ApplyRemoteDeletions(
        plan, piece, del_ins_bound, from, hwm, /*historical=*/true,
        &plan->stats.phase2_deletions_copied));
    plan->stats.phase2_delete_seconds += del_watch.ElapsedSeconds();

    Stopwatch ins_watch;
    HARBOR_RETURN_NOT_OK(CopyRemoteInsertions(
        plan, piece, from, hwm, /*historical=*/true, durable_watermarks,
        &plan->stats.phase2_tuples_copied));
    plan->stats.phase2_insert_seconds += ins_watch.ElapsedSeconds();
  }
  return Status::OK();
}

Status RecoveryManager::RunPhase2(ObjectPlan* plan) {
  TimestampAuthority* authority = worker_->authority();
  Stopwatch watch;
  int rounds_run = 0;
  for (int round = 0; round < options_.max_phase2_rounds; ++round) {
    HARBOR_FAULT_POINT("recovery.phase2.round", worker_->site_id());
    // A resumed round must replay against the interrupted round's snapshot:
    // a fresh (later) HWM would skip deletions of already-watermarked
    // tuples that committed between the two snapshots.
    const bool resuming = plan->resume.has_value();
    const Timestamp hwm =
        resuming ? plan->resume->round_hwm : authority->StableTime();
    obs::Trace(worker_->site_id(), "recovery.phase2.round", 0, round + 1,
               static_cast<int64_t>(hwm));
    if (hwm <= plan->checkpoint && !resuming) {
      // Nothing committed past the object checkpoint: no work to copy and
      // nothing new to make durable, so skip the FlushAll + forced
      // checkpoint write a no-progress round used to pay.
      break;
    }
    HARBOR_RETURN_NOT_OK(ComputeCover(plan));
    if (resuming && plan->cover.size() != 1) {
      HARBOR_RETURN_NOT_OK(DiscardResume(plan));
      --round;  // the wiped round was not an attempt at this HWM
      continue;
    }
    HARBOR_RETURN_NOT_OK(RunPhase2Round(plan, hwm));
    plan->stats.phase2_rounds = ++rounds_run;
    plan->hwm = hwm;
    plan->resume.reset();  // the round completed; the checkpoint write
                           // below also clears the durable resume entry
    // rec is now consistent up to the HWM: flush and record an
    // object-granularity checkpoint so a crash during recovery resumes
    // from here (§5.3).
    HARBOR_RETURN_NOT_OK(worker_->pool()->FlushAll());
    HARBOR_RETURN_NOT_OK(plan->obj->file->SyncHeaderIfDirty());
    HARBOR_RETURN_NOT_OK(
        worker_->WriteObjectCheckpoint(plan->obj->object_id, hwm));
    HARBOR_FAULT_POINT("recovery.phase2.after_checkpoint",
                       worker_->site_id());
    plan->checkpoint = hwm;
    // Stop iterating once we are close enough to the present for Phase 3's
    // locked queries to be cheap.
    if (authority->StableTime() - hwm <= options_.phase2_lag_threshold) break;
  }
  plan->stats.phase2_seconds = watch.ElapsedSeconds();
  plan->stats.hwm = plan->hwm;
  if (obs::Enabled()) {
    const SiteId self = worker_->site_id();
    obs::Observe(self, obs::HistogramId::kRecoveryPhase2Ns,
                 watch.ElapsedNanos());
    obs::Count(self, obs::CounterId::kRecoveryPhase2Tuples,
               static_cast<int64_t>(plan->stats.phase2_tuples_copied));
    obs::Count(self, obs::CounterId::kRecoveryPhase2Deletions,
               static_cast<int64_t>(plan->stats.phase2_deletions_copied));
    obs::SetGauge(self, obs::GaugeId::kRecoveryPhase2Rounds,
                  plan->stats.phase2_rounds);
    obs::Trace(self, "recovery.phase2.done", 0,
               static_cast<int64_t>(plan->obj->object_id),
               static_cast<int64_t>(plan->hwm));
  }
  return Status::OK();
}

// ------------------------------------------------------------- Phase 3

Status RecoveryManager::RunPhase3(std::vector<ObjectPlan>* plans,
                                  double* out_seconds) {
  Stopwatch watch;
  Network* net = worker_->network();
  const SiteId self = worker_->site_id();
  obs::Trace(self, "recovery.phase3.begin", 0,
             static_cast<int64_t>(plans->size()));

  // Fresh covers (liveness may have changed since Phase 2).
  for (ObjectPlan& plan : *plans) {
    HARBOR_RETURN_NOT_OK(ComputeCover(&plan));
  }

  // Test hook: a buddy dying exactly between cover computation and lock
  // acquisition must be survivable *within this attempt* — the retry loop
  // below recomputes covers. The injected status is deliberately dropped
  // (a propagated error would restart the whole attempt and mask whether
  // the loop itself recovers).
  if (fault::FaultInjector* fi = fault::FaultInjector::Current()) {
    (void)fi->OnPoint("recovery.phase3.cover_computed", self,
                      fault::CrashMode::kSync);
  }

  // Acquire a read lock on EVERY recovery object at once (§5.4.1), in a
  // global order to avoid deadlocks between concurrently recovering sites;
  // retry until all are granted. A failed Call may mean the buddy died, so
  // each retry recomputes the covers against current liveness and rebuilds
  // the lock list — retrying the same dead site forever cannot succeed —
  // and backs off exponentially to let lock contention drain.
  auto build_locks = [plans] {
    std::vector<std::pair<SiteId, ObjectId>> locks;
    for (const ObjectPlan& plan : *plans) {
      for (const RecoveryObject& piece : plan.cover) {
        locks.emplace_back(piece.site, piece.object_id);
      }
    }
    std::sort(locks.begin(), locks.end());
    locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
    return locks;
  };
  std::vector<std::pair<SiteId, ObjectId>> locks = build_locks();

  Status acquired = Status::OK();
  int64_t backoff_ms = 1;
  constexpr int kMaxLockAttempts = 12;
  for (int attempt = 0; attempt < kMaxLockAttempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min<int64_t>(backoff_ms * 2, 100);
      for (ObjectPlan& plan : *plans) {
        HARBOR_RETURN_NOT_OK(ComputeCover(&plan));
      }
      locks = build_locks();
    }
    acquired = Status::OK();
    std::vector<std::pair<SiteId, ObjectId>> held;
    for (const auto& [site, object] : locks) {
      TableLockMsg msg;
      msg.type = MsgType::kTableLock;
      msg.object_id = object;
      msg.owner_site = self;
      auto r = net->Call(self, site, msg.Encode());
      if (!r.ok()) {
        acquired = r.status();
        break;
      }
      held.emplace_back(site, object);
    }
    if (acquired.ok()) break;
    for (const auto& [site, object] : held) {
      TableLockMsg msg;
      msg.type = MsgType::kTableUnlock;
      msg.object_id = object;
      msg.owner_site = self;
      (void)net->Call(self, site, msg.Encode());
    }
  }
  HARBOR_RETURN_NOT_OK(acquired);

  // A recovering site dying while it holds its buddies' table read locks is
  // §5.5.1's hard case: this point deliberately returns WITHOUT the unlock
  // loop below (crash action only) — the buddies' crash subscribers must
  // release the orphaned recovery locks.
  HARBOR_FAULT_POINT("recovery.phase3.locks_held", self);

  // With the locks held no pending update transaction touching these
  // objects can commit; copy the final delta with ordinary (non-historical)
  // SEE DELETED queries (§5.4.1).
  // The final delta streams in bounded chunks like Phase 2, but with no
  // durable watermark: a failure here restarts the attempt, and Phase 1
  // removes any partial Phase-3 copies (they sit past the object
  // checkpoint).
  Status st = Status::OK();
  for (ObjectPlan& plan : *plans) {
    for (const RecoveryObject& piece : plan.cover) {
      st = ApplyRemoteDeletions(&plan, piece, plan.hwm, plan.hwm, 0,
                                /*historical=*/false,
                                &plan.stats.phase3_deletions_copied);
      if (!st.ok()) break;
      st = CopyRemoteInsertions(&plan, piece, plan.hwm, 0,
                                /*historical=*/false,
                                /*durable_watermarks=*/false,
                                &plan.stats.phase3_tuples_copied);
      if (!st.ok()) break;
    }
    if (!st.ok()) break;
  }

  Timestamp checkpoint_time = worker_->authority()->Now() - 1;
  if (st.ok()) {
    st = worker_->pool()->FlushAll();
  }
  if (st.ok()) {
    for (ObjectPlan& plan : *plans) {
      st = plan.obj->file->SyncHeaderIfDirty();
      if (!st.ok()) break;
      st = worker_->WriteObjectCheckpoint(plan.obj->object_id,
                                          checkpoint_time);
      if (!st.ok()) break;
    }
  }

  // Join pending transactions: tell every coordinator that rec on S is
  // coming online; the reply is the "all done" of Figure 5-4.
  if (st.ok()) {
    // Funneled into st (not the return macro) so the lock release below
    // still runs and a clean retry is possible.
    if (fault::FaultInjector* fi = fault::FaultInjector::Current()) {
      st = fi->OnPoint("recovery.phase3.coming_online", self,
                       fault::CrashMode::kSync);
    }
  }
  if (st.ok()) {
    ComingOnlineMsg online;
    online.site = self;
    for (const ObjectPlan& plan : *plans) {
      online.objects.emplace_back(plan.obj->table_id, plan.obj->partition);
    }
    for (SiteId coordinator : options_.coordinators) {
      auto r = net->Call(self, coordinator, online.Encode());
      if (!r.ok() && !r.status().IsUnavailable()) {
        st = r.status();
        break;
      }
    }
  }

  // Release the recovery locks whether or not we succeeded; a failure path
  // restarts recovery and must not leave buddies blocked (§5.5).
  for (const auto& [site, object] : locks) {
    TableLockMsg msg;
    msg.type = MsgType::kTableUnlock;
    msg.object_id = object;
    msg.owner_site = self;
    (void)net->Call(self, site, msg.Encode());
  }
  HARBOR_RETURN_NOT_OK(st);

  // All objects recovered: collapse to a single global checkpoint (§5.3).
  HARBOR_RETURN_NOT_OK(worker_->PromoteGlobalCheckpoint(checkpoint_time));
  worker_->liveness()->Set(self, SiteState::kOnline);
  *out_seconds = watch.ElapsedSeconds();
  if (obs::Enabled()) {
    obs::Observe(self, obs::HistogramId::kRecoveryPhase3Ns,
                 watch.ElapsedNanos());
    int64_t tuples = 0;
    int64_t deletions = 0;
    for (const ObjectPlan& plan : *plans) {
      tuples += static_cast<int64_t>(plan.stats.phase3_tuples_copied);
      deletions += static_cast<int64_t>(plan.stats.phase3_deletions_copied);
    }
    obs::Count(self, obs::CounterId::kRecoveryPhase3Tuples, tuples);
    obs::Count(self, obs::CounterId::kRecoveryPhase3Deletions, deletions);
    obs::Trace(self, "recovery.phase3.done", 0, tuples, deletions);
  }
  return Status::OK();
}

// --------------------------------------------------------------- driver

Result<RecoveryStats> RecoveryManager::Recover() {
  Status last = Status::OK();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (!worker_->running()) {
      // The recovering site itself died mid-recovery (its runtime is gone);
      // a retry would touch freed state. The caller restarts the site and
      // runs a fresh RecoveryManager.
      last = Status::Unavailable("recovering site went down mid-recovery");
      break;
    }
    worker_->PauseCheckpoints(true);
    obs::Trace(worker_->site_id(), "recovery.begin", 0, attempt + 1);
    RecoveryStats stats;
    Stopwatch total;

    HARBOR_ASSIGN_OR_RETURN(CheckpointRecord ckpt, worker_->LastCheckpoint());
    std::vector<ObjectPlan> plans;
    for (TableObject* obj : worker_->local_catalog()->objects()) {
      ObjectPlan plan;
      plan.obj = obj;
      plan.checkpoint = ckpt.TimeFor(obj->object_id);
      plan.hwm = plan.checkpoint;
      if (const StreamResume* r = ckpt.ResumeFor(obj->object_id)) {
        plan.resume = *r;  // previous attempt died mid-stream (§5.5.2)
      }
      plan.stats.object_id = obj->object_id;
      plans.push_back(std::move(plan));
    }

    // Phases 1-2, per object — in parallel when configured (§5.1: "multiple
    // rec objects ... recovered in parallel; each object proceeds through
    // the phases at its own pace").
    auto run_offline_phases = [this](ObjectPlan* plan) -> Status {
      HARBOR_RETURN_NOT_OK(RunPhase1(plan));
      return RunPhase2(plan);
    };
    Stopwatch offline_watch;
    std::vector<Status> results(plans.size(), Status::OK());
    if (options_.parallel && plans.size() > 1) {
      std::vector<std::thread> threads;
      threads.reserve(plans.size());
      for (size_t i = 0; i < plans.size(); ++i) {
        threads.emplace_back([&, i] { results[i] = run_offline_phases(&plans[i]); });
      }
      for (std::thread& t : threads) t.join();
    } else {
      for (size_t i = 0; i < plans.size(); ++i) {
        results[i] = run_offline_phases(&plans[i]);
      }
    }
    const double offline_seconds = offline_watch.ElapsedSeconds();
    last = Status::OK();
    for (const Status& s : results) {
      if (!s.ok()) last = s;
    }
    if (!last.ok()) {
      // Recovery buddy failed mid-phase: restart with a fresh plan (§5.5.2)
      // from the per-object checkpoints already recorded.
      continue;
    }

    double phase3_seconds = 0;
    last = RunPhase3(&plans, &phase3_seconds);
    if (!last.ok()) continue;

    const bool ran_parallel = options_.parallel && plans.size() > 1;
    for (const ObjectPlan& plan : plans) {
      stats.objects.push_back(plan.stats);
      if (ran_parallel) {
        stats.phase1_seconds =
            std::max(stats.phase1_seconds, plan.stats.phase1_seconds);
        stats.phase2_seconds =
            std::max(stats.phase2_seconds, plan.stats.phase2_seconds);
      } else {
        stats.phase1_seconds += plan.stats.phase1_seconds;
        stats.phase2_seconds += plan.stats.phase2_seconds;
      }
    }
    stats.offline_seconds = offline_seconds;
    stats.phase3_seconds = phase3_seconds;
    stats.total_seconds = total.ElapsedSeconds();
    worker_->PauseCheckpoints(false);
    obs::Trace(worker_->site_id(), "recovery.done", 0,
               static_cast<int64_t>(stats.total_seconds * 1e9));
    return stats;
  }
  worker_->PauseCheckpoints(false);
  HARBOR_RETURN_NOT_OK(last);
  return Status::Internal("recovery retries exhausted");
}

}  // namespace harbor
