#include "core/recovery_manager.h"

#include <algorithm>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "core/messages.h"
#include "runtime/scheduler.h"
#include "exec/seq_scan.h"
#include "fault/fault_injector.h"
#include "obs/observer.h"

namespace harbor {

RecoveryManager::RecoveryManager(Worker* worker, RecoveryOptions options)
    : worker_(worker), options_(std::move(options)) {}

bool RecoveryManager::BuddyUsable(SiteId site) const {
  // Only a fully online site may serve as a recovery buddy: a site that is
  // itself recovering holds incomplete replicas (its phase-2 copies are
  // still in flight) and must never be read from, even though its endpoint
  // answers (§5.5.2). This is deliberately Get() == kOnline, not "not
  // down" — kRecovering is excluded.
  return site != worker_->site_id() &&
         worker_->liveness()->Get(site) == SiteState::kOnline;
}

Status RecoveryManager::AnnotateUnavailable(const ObjectPlan& plan,
                                            Status st) const {
  if (st.ok() || !st.IsUnavailable()) return st;
  // Every replica of this object is gone (> K failures): name the object so
  // the error surfaced after the bounded retry loop says what is stuck.
  return Status::Unavailable(
      "recovery of object " + std::to_string(plan.obj->object_id) +
      " (table " + std::to_string(plan.obj->table_id) +
      "): " + st.message());
}

Status RecoveryManager::ComputeCover(ObjectPlan* plan) {
  auto cover = worker_->global_catalog()->PlanCover(
      plan->obj->table_id, plan->obj->partition, worker_->site_id(),
      [this](SiteId s) { return BuddyUsable(s); });
  if (!cover.ok()) return AnnotateUnavailable(*plan, cover.status());
  plan->cover = std::move(*cover);
  return Status::OK();
}

// ------------------------------------------------------------- Phase 1

Status RecoveryManager::RunPhase1(ObjectPlan* plan) {
  HARBOR_FAULT_POINT("recovery.phase1.begin", worker_->site_id());
  Stopwatch watch;
  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;

  // DELETE LOCALLY FROM rec SEE DELETED
  //   WHERE insertion_time > T_checkpoint OR insertion_time = uncommitted
  // (the uncommitted sentinel is numerically > any checkpoint, §5.2) —
  // EXCEPT versions claimed by a durable mid-stream watermark: each
  // watermark promises that, within its stream's insertion-time window,
  // every version key at or below its (insertion_ts, tuple_id) cursor was
  // applied and flushed before the previous attempt died, so the resumed
  // stream will not re-ship them. Keys at the cursor timestamp but past the
  // cursor tuple id belong to later, possibly-unflushed chunks and must go.
  const auto covered = [plan](Timestamp ts, TupleId tid) {
    for (const StreamResume& r : plan->resume) {
      // Window (window_lo, window_hi]; 0 bounds mean unbounded (legacy V2
      // watermarks cover the whole round range). Windows are disjoint, so
      // the first containing window decides.
      if (r.window_lo != 0 && ts <= r.window_lo) continue;
      if (r.window_hi != 0 && ts > r.window_hi) continue;
      return ts < r.insertion_ts ||
             (ts == r.insertion_ts && tid <= r.tuple_id);
    }
    return false;
  };
  {
    ScanSpec spec;
    spec.object_id = obj->object_id;
    spec.mode = ScanMode::kSeeDeleted;
    spec.has_insertion_after = true;
    spec.insertion_after = plan->checkpoint;
    SeqScanOperator scan(store, obj, std::move(spec));
    HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> victims, CollectAll(&scan));
    for (const Tuple& t : victims) {
      if (covered(t.insertion_ts(), t.tuple_id())) continue;
      HARBOR_RETURN_NOT_OK(store->PhysicalDelete(obj, t.record_id()));
      plan->stats.phase1_removed++;
    }
  }

  // UPDATE LOCALLY rec SET deletion_time = 0 SEE DELETED
  //   WHERE deletion_time > T_checkpoint
  {
    ScanSpec spec;
    spec.object_id = obj->object_id;
    spec.mode = ScanMode::kSeeDeleted;
    spec.has_deletion_after = true;
    spec.deletion_after = plan->checkpoint;
    SeqScanOperator scan(store, obj, std::move(spec));
    HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> deleted, CollectAll(&scan));
    for (const Tuple& t : deleted) {
      HARBOR_RETURN_NOT_OK(
          store->SetDeletionTs(obj, t.record_id(), kNotDeleted));
    }
    plan->stats.phase1_undeleted = deleted.size();
  }

  plan->stats.phase1_seconds = watch.ElapsedSeconds();
  if (obs::Enabled()) {
    const SiteId self = worker_->site_id();
    obs::Observe(self, obs::HistogramId::kRecoveryPhase1Ns,
                 watch.ElapsedNanos());
    obs::Count(self, obs::CounterId::kRecoveryPhase1Removed,
               static_cast<int64_t>(plan->stats.phase1_removed));
    obs::Count(self, obs::CounterId::kRecoveryPhase1Undeleted,
               static_cast<int64_t>(plan->stats.phase1_undeleted));
    obs::Trace(self, "recovery.phase1.done", 0,
               static_cast<int64_t>(obj->object_id),
               static_cast<int64_t>(plan->stats.phase1_removed +
                                    plan->stats.phase1_undeleted));
  }
  return Status::OK();
}

// ------------------------------------------------------------- Phase 2

Status RecoveryManager::StreamScan(
    const RecoveryObject& piece, ScanMsg msg,
    const std::function<Status(ScanReplyMsg&)>& apply) {
  Network* net = worker_->network();
  const SiteId self = worker_->site_id();
  msg.max_tuples = static_cast<uint32_t>(options_.stream_chunk_tuples);
  if (msg.max_tuples == 0) {
    HARBOR_ASSIGN_OR_RETURN(Message reply,
                            net->Call(self, piece.site, msg.Encode()));
    if (obs::Enabled()) {
      obs::Observe(self, obs::HistogramId::kRecoveryChunkBytes,
                   reply.WireBytes());
    }
    HARBOR_ASSIGN_OR_RETURN(ScanReplyMsg decoded, ScanReplyMsg::Decode(reply));
    return apply(decoded);
  }
  // Double-buffered pipeline: while chunk N applies locally, chunk N+1 is
  // already on the wire. Each reply carries the next cursor, so the fetch
  // for N+1 can be issued before N is consumed.
  std::future<Result<Message>> inflight =
      net->CallAsync(self, piece.site, msg.Encode());
  bool first = true;
  while (true) {
    const int64_t wait_start = obs::Enabled() ? NowNanos() : 0;
    Result<Message> raw = [&] {
      runtime::ScopedBlocking block;  // fetch wait on the shared pool
      return inflight.get();
    }();
    if (obs::Enabled() && !first) {
      // Fetch wait not hidden behind the previous chunk's apply — 0 when
      // the pipeline fully overlaps transfer with apply.
      obs::Observe(self, obs::HistogramId::kRecoveryChunkStallNs,
                   NowNanos() - wait_start);
    }
    first = false;
    HARBOR_RETURN_NOT_OK(raw.status());
    const int64_t wire_bytes = raw->WireBytes();
    HARBOR_ASSIGN_OR_RETURN(ScanReplyMsg decoded, ScanReplyMsg::Decode(*raw));
    if (decoded.truncated) {
      msg.has_cursor = true;
      msg.cursor_insertion_ts = decoded.last_insertion_ts;
      msg.cursor_tuple_id = decoded.last_tuple_id;
      // Echo the serving site's pinned insertion-time cap so the stream
      // stays bounded to tuples that existed when it began.
      if (decoded.cap_insertion_ts > 0) {
        msg.cap_insertion_ts = decoded.cap_insertion_ts;
      }
      inflight = net->CallAsync(self, piece.site, msg.Encode());
    }
    if (obs::Enabled()) {
      obs::Count(self, obs::CounterId::kRecoveryChunks);
      obs::Observe(self, obs::HistogramId::kRecoveryChunkBytes, wire_bytes);
      Stopwatch apply_watch;
      HARBOR_RETURN_NOT_OK(apply(decoded));
      obs::Observe(self, obs::HistogramId::kRecoveryChunkApplyNs,
                   apply_watch.ElapsedNanos());
    } else {
      HARBOR_RETURN_NOT_OK(apply(decoded));
    }
    if (!decoded.truncated) return Status::OK();
  }
}

Status RecoveryManager::ApplyRemoteDeletions(
    ObjectPlan* plan, const RecoveryObject& piece, Timestamp ins_after,
    Timestamp ins_at_or_before, Timestamp del_after, Timestamp hwm,
    bool historical, size_t* copied, bool* retriable) {
  // SELECT REMOTELY tuple_id, deletion_time FROM recovery_object
  //   SEE DELETED [HISTORICAL WITH TIME hwm]
  //   WHERE recovery_predicate AND insertion_time <= ins_bound
  //     [AND insertion_time > ins_after] AND deletion_time > from
  // The insertion bounds restrict the pass to tuples Phase 1 *kept* — the
  // base below the checkpoint and, on a resumed stream, the already-copied
  // prefix of its window — whose post-checkpoint deletions Phase 1 undid.
  // Tuples the insertion streams (re-)ship arrive with deletion state
  // included and need no pass.
  ScanMsg scan;
  scan.spec.object_id = piece.object_id;
  scan.spec.mode = historical ? ScanMode::kSeeDeletedHistorical
                              : ScanMode::kSeeDeleted;
  scan.spec.as_of = hwm;
  if (ins_after > 0) {
    scan.spec.has_insertion_after = true;
    scan.spec.insertion_after = ins_after;
  }
  scan.spec.has_insertion_at_or_before = true;
  scan.spec.insertion_at_or_before = ins_at_or_before;
  scan.spec.has_deletion_after = true;
  scan.spec.deletion_after = del_after;
  scan.spec.range = piece.predicate;
  scan.minimal_projection = true;
  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;
  Status apply_status;
  Status st = StreamScan(piece, std::move(scan), [&](ScanReplyMsg& decoded) {
    apply_status = [&]() -> Status {
      if (decoded.id_deletions.empty()) return Status::OK();
      // UPDATE LOCALLY rec SET deletion_time = del_time
      //   WHERE tuple_id = tup_id AND deletion_time = 0
      // The matching local version shares the remote version's insertion
      // time, so the scan below prunes to the segments whose insertion range
      // covers the shipped timestamps — the local side of recovery pays per
      // *affected historical segment*, exactly like the remote side (§6.4.2).
      // Skipping already-deleted versions also makes the pass idempotent, so
      // a failed-over stream can simply re-run it.
      std::unordered_map<TupleId, Timestamp> wanted;
      Timestamp lo = decoded.id_deletions.front().insertion_ts;
      Timestamp hi = lo;
      for (const IdDeletion& d : decoded.id_deletions) {
        wanted.emplace(d.tuple_id, d.deletion_ts);
        lo = std::min(lo, d.insertion_ts);
        hi = std::max(hi, d.insertion_ts);
      }
      ScanSpec local;
      local.object_id = obj->object_id;
      local.mode = ScanMode::kSeeDeleted;
      if (lo > 0) {
        // lo == 0 must NOT set insertion_after = lo - 1: the uint64 wraps to
        // UINT64_MAX and the scan silently matches nothing, dropping every
        // shipped deletion.
        local.has_insertion_after = true;
        local.insertion_after = lo - 1;
      }
      local.has_insertion_at_or_before = true;
      local.insertion_at_or_before = hi;
      SeqScanOperator local_scan(store, obj, std::move(local));
      HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> candidates,
                              CollectAll(&local_scan));
      for (const Tuple& t : candidates) {
        if (t.deletion_ts() != kNotDeleted) continue;  // older version
        auto it = wanted.find(t.tuple_id());
        if (it == wanted.end()) continue;
        HARBOR_RETURN_NOT_OK(
            store->SetDeletionTs(obj, t.record_id(), it->second));
        (*copied)++;
      }
      return Status::OK();
    }();
    return apply_status;
  });
  if (retriable != nullptr) {
    // Only an abruptly-closed-socket failure (kUnavailable, §5.5.1) is safe
    // to fail over — whether it surfaced on the wire or out of the apply
    // callback before any row of the chunk landed. Any other apply error
    // would repeat identically against every replica.
    *retriable = !st.ok() && st.IsUnavailable() &&
                 (apply_status.ok() || apply_status.IsUnavailable());
  }
  return st;
}

Status RecoveryManager::CopyRemoteInsertions(
    ObjectPlan* plan, const RecoveryObject& piece, const StreamWindow& window,
    Timestamp hwm, bool historical, bool durable_watermarks,
    StreamCursor* cursor, Timestamp* cap, size_t* copied, bool* retriable) {
  // INSERT LOCALLY INTO rec
  //   (SELECT REMOTELY * FROM recovery_object SEE DELETED
  //      [HISTORICAL WITH TIME hwm]
  //      WHERE recovery_predicate AND insertion_time > window.lo
  //        [AND insertion_time <= window.hi]
  //        [AND insertion_time != uncommitted])
  ScanMsg scan;
  scan.spec.object_id = piece.object_id;
  scan.spec.mode = historical ? ScanMode::kSeeDeletedHistorical
                              : ScanMode::kSeeDeleted;
  scan.spec.as_of = hwm;
  scan.spec.has_insertion_after = true;
  scan.spec.insertion_after = window.lo;
  if (window.hi != 0 && window.hi < hwm) {
    // An interior window carries its own upper bound; the top window (and
    // the legacy single stream) stays unbounded and rides the buddy-pinned
    // cap instead.
    scan.spec.has_insertion_at_or_before = true;
    scan.spec.insertion_at_or_before = window.hi;
  }
  scan.spec.exclude_uncommitted = !historical;  // §5.4.1's extra check
  scan.spec.range = piece.predicate;
  const SiteId self = worker_->site_id();
  if (cursor != nullptr && cursor->has_value()) {
    // Resume the stream strictly past the cursor — the durable watermark of
    // a previous attempt, or the in-memory position of a failed-over
    // stream; everything at or below it is already applied.
    scan.has_cursor = true;
    scan.cursor_insertion_ts = (*cursor)->first;
    scan.cursor_tuple_id = (*cursor)->second;
    obs::Count(self, obs::CounterId::kRecoveryStreamResumes);
    obs::Trace(self, "recovery.stream.resume", 0,
               static_cast<int64_t>(plan->obj->object_id),
               static_cast<int64_t>((*cursor)->first));
  }
  if (cap != nullptr && *cap > 0) {
    // Carry the original buddy's pinned insertion cap across failover so
    // the stream stays bounded to the same logical tuple set.
    scan.cap_insertion_ts = *cap;
  }
  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;
  int chunks_since_mark = 0;
  Status apply_status;
  Status st = StreamScan(piece, std::move(scan), [&](ScanReplyMsg& decoded) {
    apply_status = [&]() -> Status {
      // Replicas may store columns in different orders; copy by name (§3.1).
      HARBOR_ASSIGN_OR_RETURN(std::vector<size_t> mapping,
                              obj->schema.MappingFrom(decoded.schema));
      if (durable_watermarks) {
        HARBOR_FAULT_POINT("recovery.phase2.chunk", self);
      }
      // Concurrent same-object streams apply without mutual exclusion: the
      // batch insert skips pages a competitor fills first, and the index,
      // segment headers, and checkpoint file all lock internally.
      // Serializing here would put the whole round on one core and cap the
      // multi-buddy speedup at the single-stream apply rate.
      std::vector<Tuple> remapped;
      remapped.reserve(decoded.tuples.size());
      for (const Tuple& t : decoded.tuples) {
        remapped.push_back(t.RemapColumns(mapping));
      }
      HARBOR_RETURN_NOT_OK(store->InsertCommittedTuples(obj, remapped,
                                                        copied));
      if (durable_watermarks && decoded.truncated && !decoded.tuples.empty() &&
          options_.watermark_interval_chunks > 0 &&
          ++chunks_since_mark >= options_.watermark_interval_chunks) {
        chunks_since_mark = 0;
        // Durability order: the copied pages must be on disk before the
        // watermark that claims them — the chunk-granularity version of
        // §5.3's checkpoint rule. The watermark names its stream and window
        // so a later attempt reconstructs the round's full layout.
        HARBOR_RETURN_NOT_OK(worker_->pool()->FlushAll());
        HARBOR_RETURN_NOT_OK(obj->file->SyncHeaderIfDirty());
        const StreamResume mark{hwm,
                                decoded.last_insertion_ts,
                                decoded.last_tuple_id,
                                window.stream_index,
                                window.lo,
                                window.hi};
        HARBOR_RETURN_NOT_OK(
            worker_->WriteObjectResume(obj->object_id, mark));
      }
      if (cursor != nullptr && decoded.truncated) {
        *cursor = std::make_pair(decoded.last_insertion_ts,
                                 decoded.last_tuple_id);
      }
      if (cap != nullptr && decoded.cap_insertion_ts > 0) {
        *cap = decoded.cap_insertion_ts;
      }
      return Status::OK();
    }();
    return apply_status;
  });
  if (retriable != nullptr) {
    // Same rule as the deletion pass: kUnavailable (wire, or the fault
    // point at the head of the apply callback — the cursor has not moved
    // for the failed chunk) fails over; other apply errors are fatal.
    *retriable = !st.ok() && st.IsUnavailable() &&
                 (apply_status.ok() || apply_status.IsUnavailable());
  }
  return st;
}

Status RecoveryManager::DiscardResume(ObjectPlan* plan) {
  // The watermarks name positions in full-replica streams; a partitioned
  // cover interleaves the pieces' key ranges and the cursors are
  // meaningless. Wipe everything past the object checkpoint (including the
  // prefixes Phase 1 kept on the watermarks' promise) and restart the round
  // cleanly from the object checkpoint.
  VersionStore* store = worker_->store();
  TableObject* obj = plan->obj;
  ScanSpec spec;
  spec.object_id = obj->object_id;
  spec.mode = ScanMode::kSeeDeleted;
  spec.has_insertion_after = true;
  spec.insertion_after = plan->checkpoint;
  SeqScanOperator scan(store, obj, std::move(spec));
  HARBOR_ASSIGN_OR_RETURN(std::vector<Tuple> victims, CollectAll(&scan));
  for (const Tuple& t : victims) {
    HARBOR_RETURN_NOT_OK(store->PhysicalDelete(obj, t.record_id()));
  }
  plan->resume.clear();
  // Re-recording the unchanged checkpoint durably drops the resume entries.
  return worker_->WriteObjectCheckpoint(obj->object_id, plan->checkpoint);
}

std::vector<RecoveryManager::StreamWindow> RecoveryManager::PlanWindows(
    const ObjectPlan& plan, Timestamp hwm, size_t max_streams) const {
  const Timestamp from = plan.checkpoint;
  std::vector<StreamWindow> windows;
  if (!plan.resume.empty()) {
    // Rebuild the interrupted round's layout from the stored watermarks,
    // then cover any uncovered gaps of (from, hwm] with fresh windows.
    // Stored watermarks keep their stream indexes (their durable entries
    // are overwritten in place as the streams advance); gap windows take
    // fresh indexes past every stored one so they can never clobber a
    // stale entry.
    uint32_t next_index = 0;
    for (const StreamResume& r : plan.resume) {
      StreamWindow w;
      w.stream_index = r.stream_index;
      w.lo = std::max(from, r.window_lo);
      w.hi = (r.window_hi == 0 || r.window_hi > hwm) ? hwm : r.window_hi;
      if (w.hi <= w.lo) continue;  // stale entry below the checkpoint
      w.resume = r;
      windows.push_back(std::move(w));
      next_index = std::max(next_index, r.stream_index + 1);
    }
    std::vector<StreamWindow> sorted = windows;
    std::sort(sorted.begin(), sorted.end(),
              [](const StreamWindow& a, const StreamWindow& b) {
                return a.lo < b.lo;
              });
    Timestamp pos = from;
    for (const StreamWindow& w : sorted) {
      if (w.lo > pos) {
        StreamWindow gap;
        gap.stream_index = next_index++;
        gap.lo = pos;
        gap.hi = w.lo;
        windows.push_back(std::move(gap));
      }
      pos = std::max(pos, w.hi);
    }
    if (pos < hwm) {
      StreamWindow gap;
      gap.stream_index = next_index++;
      gap.lo = pos;
      gap.hi = hwm;
      windows.push_back(std::move(gap));
    }
    return windows;
  }
  // Fresh round: split (from, hwm] into n roughly-equal insertion-time
  // windows, never more than the range has distinct timestamps.
  const Timestamp span = hwm - from;
  size_t n = max_streams;
  if (static_cast<Timestamp>(n) > span) n = static_cast<size_t>(span);
  if (n == 0) n = 1;
  windows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StreamWindow w;
    w.stream_index = static_cast<uint32_t>(i);
    w.lo = from + span * i / n;
    w.hi = from + span * (i + 1) / n;
    windows.push_back(std::move(w));
  }
  return windows;
}

Status RecoveryManager::RunStream(ObjectPlan* plan,
                                  const std::vector<RecoveryObject>& pool,
                                  const StreamWindow& window, Timestamp hwm,
                                  std::mutex* stats_mu) {
  const SiteId self = worker_->site_id();
  obs::Count(self, obs::CounterId::kRecoveryStreamsStarted);
  Stopwatch stream_watch;
  StreamCursor cursor;
  if (window.resume.has_value()) {
    cursor = std::make_pair(window.resume->insertion_ts,
                            window.resume->tuple_id);
  }
  Timestamp cap = 0;
  // Stream 0 owns the deletion pass for the base (ins <= checkpoint); a
  // resumed window additionally owns the pass over its already-kept prefix.
  // Fresh windows past stream 0 need none: their insertions arrive with
  // deletion state included.
  bool need_deletions = window.stream_index == 0 || window.resume.has_value();
  size_t del_copied = 0;
  size_t ins_copied = 0;
  double del_seconds = 0;
  double ins_seconds = 0;
  bool attempted = false;
  Status last = AnnotateUnavailable(
      *plan, Status::Unavailable("no usable replica left to stream from"));
  for (size_t b = 0; b < pool.size(); ++b) {
    const RecoveryObject& piece = pool[(window.stream_index + b) % pool.size()];
    // Re-checked per candidate: a buddy that died — or started recovering
    // itself — after the pool was computed must not serve (§5.5.2).
    if (!BuddyUsable(piece.site)) continue;
    if (attempted) {
      obs::Count(self, obs::CounterId::kRecoveryStreamFailovers);
      obs::Trace(self, "recovery.stream.failover", 0,
                 static_cast<int64_t>(plan->obj->object_id),
                 static_cast<int64_t>(piece.site));
    }
    attempted = true;
    Status st;
    bool retriable = false;
    if (need_deletions) {
      Stopwatch del_watch;
      const Timestamp ins_after = window.stream_index == 0 ? 0 : window.lo;
      const Timestamp ins_hi = cursor.has_value() ? cursor->first : window.lo;
      st = ApplyRemoteDeletions(plan, piece, ins_after, ins_hi,
                                plan->checkpoint, hwm, /*historical=*/true,
                                &del_copied, &retriable);
      del_seconds += del_watch.ElapsedSeconds();
      if (st.ok()) need_deletions = false;
    }
    if (st.ok()) {
      Stopwatch ins_watch;
      st = CopyRemoteInsertions(plan, piece, window, hwm, /*historical=*/true,
                                /*durable_watermarks=*/true, &cursor, &cap,
                                &ins_copied, &retriable);
      ins_seconds += ins_watch.ElapsedSeconds();
    }
    last = st;
    if (st.ok()) break;
    // Only a buddy lost from the wire fails over — at the in-memory cursor,
    // on the next usable replica. Local apply errors abort the attempt.
    if (!retriable) break;
  }
  {
    std::unique_lock<std::mutex> lock;
    if (stats_mu != nullptr) lock = std::unique_lock<std::mutex>(*stats_mu);
    plan->stats.phase2_deletions_copied += del_copied;
    plan->stats.phase2_tuples_copied += ins_copied;
    plan->stats.phase2_delete_seconds += del_seconds;
    plan->stats.phase2_insert_seconds += ins_seconds;
  }
  if (last.ok() && obs::Enabled()) {
    obs::Observe(self, obs::HistogramId::kRecoveryStreamNs,
                 stream_watch.ElapsedNanos());
  }
  return last;
}

Status RecoveryManager::RunPhase2Round(ObjectPlan* plan, Timestamp hwm) {
  const Timestamp from = plan->checkpoint;
  if (plan->cover.size() > 1) {
    // Partitioned cover: one serial stream per piece. Cursors and durable
    // watermarks are meaningless across interleaved key ranges (the caller
    // discarded any), and the pieces' replicas are not interchangeable, so
    // neither window-splitting nor failover applies.
    for (const RecoveryObject& piece : plan->cover) {
      Stopwatch del_watch;
      HARBOR_RETURN_NOT_OK(ApplyRemoteDeletions(
          plan, piece, /*ins_after=*/0, from, from, hwm, /*historical=*/true,
          &plan->stats.phase2_deletions_copied, /*retriable=*/nullptr));
      plan->stats.phase2_delete_seconds += del_watch.ElapsedSeconds();

      Stopwatch ins_watch;
      StreamWindow window;
      window.lo = from;  // hi stays 0: unbounded, the buddy pins the cap
      HARBOR_RETURN_NOT_OK(CopyRemoteInsertions(
          plan, piece, window, hwm, /*historical=*/true,
          /*durable_watermarks=*/false, /*cursor=*/nullptr, /*cap=*/nullptr,
          &plan->stats.phase2_tuples_copied, /*retriable=*/nullptr));
      plan->stats.phase2_insert_seconds += ins_watch.ElapsedSeconds();
    }
    return Status::OK();
  }

  // Full-replica cover: split (from, hwm] into disjoint insertion-time
  // windows and stream each from a different buddy concurrently, each with
  // its own durable watermark. The pool is every usable full replica, in
  // PlanCover's rotation order so concurrent recoveries spread load.
  auto pool_r = worker_->global_catalog()->ReplicasCovering(
      plan->obj->table_id, plan->obj->partition, worker_->site_id(),
      [this](SiteId s) { return BuddyUsable(s); });
  if (!pool_r.ok()) return AnnotateUnavailable(*plan, pool_r.status());
  const std::vector<RecoveryObject>& pool = *pool_r;
  const size_t max_streams = std::min<size_t>(
      static_cast<size_t>(std::max(options_.max_parallel_streams, 1)),
      pool.size());
  const std::vector<StreamWindow> windows = PlanWindows(*plan, hwm,
                                                        max_streams);
  if (windows.size() == 1) {
    return RunStream(plan, pool, windows[0], hwm, /*stats_mu=*/nullptr);
  }
  std::mutex stats_mu;
  std::vector<std::function<Status()>> streams;
  streams.reserve(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    streams.push_back([&, i] {
      return RunStream(plan, pool, windows[i], hwm, &stats_mu);
    });
  }
  for (const Status& s :
       runtime::RunParallel(worker_->scheduler(), std::move(streams))) {
    HARBOR_RETURN_NOT_OK(s);
  }
  return Status::OK();
}

Status RecoveryManager::RunPhase2(ObjectPlan* plan) {
  TimestampAuthority* authority = worker_->authority();
  Stopwatch watch;
  int rounds_run = 0;
  for (int round = 0; round < options_.max_phase2_rounds; ++round) {
    HARBOR_FAULT_POINT("recovery.phase2.round", worker_->site_id());
    // A resumed round must replay against the interrupted round's snapshot:
    // a fresh (later) HWM would skip deletions of already-watermarked
    // tuples that committed between the two snapshots. Every stream of a
    // round shares the round HWM, so any entry names it.
    const bool resuming = !plan->resume.empty();
    const Timestamp hwm =
        resuming ? plan->resume.front().round_hwm : authority->StableTime();
    obs::Trace(worker_->site_id(), "recovery.phase2.round", 0, round + 1,
               static_cast<int64_t>(hwm));
    if (hwm <= plan->checkpoint && !resuming) {
      // Nothing committed past the object checkpoint: no work to copy and
      // nothing new to make durable, so skip the FlushAll + forced
      // checkpoint write a no-progress round used to pay.
      break;
    }
    HARBOR_RETURN_NOT_OK(ComputeCover(plan));
    if (resuming && plan->cover.size() != 1) {
      HARBOR_RETURN_NOT_OK(DiscardResume(plan));
      --round;  // the wiped round was not an attempt at this HWM
      continue;
    }
    HARBOR_RETURN_NOT_OK(RunPhase2Round(plan, hwm));
    plan->stats.phase2_rounds = ++rounds_run;
    plan->hwm = hwm;
    plan->resume.clear();  // the round completed; the checkpoint write
                           // below also clears the durable resume entries
    // rec is now consistent up to the HWM: flush and record an
    // object-granularity checkpoint so a crash during recovery resumes
    // from here (§5.3).
    HARBOR_RETURN_NOT_OK(worker_->pool()->FlushAll());
    HARBOR_RETURN_NOT_OK(plan->obj->file->SyncHeaderIfDirty());
    HARBOR_RETURN_NOT_OK(
        worker_->WriteObjectCheckpoint(plan->obj->object_id, hwm));
    HARBOR_FAULT_POINT("recovery.phase2.after_checkpoint",
                       worker_->site_id());
    plan->checkpoint = hwm;
    // Stop iterating once we are close enough to the present for Phase 3's
    // locked queries to be cheap.
    if (authority->StableTime() - hwm <= options_.phase2_lag_threshold) break;
  }
  plan->stats.phase2_seconds = watch.ElapsedSeconds();
  plan->stats.hwm = plan->hwm;
  if (obs::Enabled()) {
    const SiteId self = worker_->site_id();
    obs::Observe(self, obs::HistogramId::kRecoveryPhase2Ns,
                 watch.ElapsedNanos());
    obs::Count(self, obs::CounterId::kRecoveryPhase2Tuples,
               static_cast<int64_t>(plan->stats.phase2_tuples_copied));
    obs::Count(self, obs::CounterId::kRecoveryPhase2Deletions,
               static_cast<int64_t>(plan->stats.phase2_deletions_copied));
    obs::SetGauge(self, obs::GaugeId::kRecoveryPhase2Rounds,
                  plan->stats.phase2_rounds);
    obs::Trace(self, "recovery.phase2.done", 0,
               static_cast<int64_t>(plan->obj->object_id),
               static_cast<int64_t>(plan->hwm));
  }
  return Status::OK();
}

// ------------------------------------------------------------- Phase 3

Status RecoveryManager::RunPhase3(std::vector<ObjectPlan>* plans,
                                  double* out_seconds) {
  Stopwatch watch;
  Network* net = worker_->network();
  const SiteId self = worker_->site_id();
  obs::Trace(self, "recovery.phase3.begin", 0,
             static_cast<int64_t>(plans->size()));

  // Fresh covers (liveness may have changed since Phase 2).
  for (ObjectPlan& plan : *plans) {
    HARBOR_RETURN_NOT_OK(ComputeCover(&plan));
  }

  // Test hook: a buddy dying exactly between cover computation and lock
  // acquisition must be survivable *within this attempt* — the retry loop
  // below recomputes covers. The injected status is deliberately dropped
  // (a propagated error would restart the whole attempt and mask whether
  // the loop itself recovers).
  if (fault::FaultInjector* fi = fault::FaultInjector::Current()) {
    (void)fi->OnPoint("recovery.phase3.cover_computed", self,
                      fault::CrashMode::kSync);
  }

  // Acquire a read lock on EVERY recovery object at once (§5.4.1), in a
  // global order to avoid deadlocks between concurrently recovering sites;
  // retry until all are granted. A failed Call may mean the buddy died, so
  // each retry recomputes the covers against current liveness and rebuilds
  // the lock list — retrying the same dead site forever cannot succeed —
  // and backs off exponentially to let lock contention drain.
  auto build_locks = [plans] {
    std::vector<std::pair<SiteId, ObjectId>> locks;
    for (const ObjectPlan& plan : *plans) {
      for (const RecoveryObject& piece : plan.cover) {
        locks.emplace_back(piece.site, piece.object_id);
      }
    }
    std::sort(locks.begin(), locks.end());
    locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
    return locks;
  };
  std::vector<std::pair<SiteId, ObjectId>> locks = build_locks();

  Status acquired = Status::OK();
  int64_t backoff_ms = 1;
  constexpr int kMaxLockAttempts = 12;
  for (int attempt = 0; attempt < kMaxLockAttempts; ++attempt) {
    if (attempt > 0) {
      runtime::ScopedBlocking block;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min<int64_t>(backoff_ms * 2, 100);
      for (ObjectPlan& plan : *plans) {
        HARBOR_RETURN_NOT_OK(ComputeCover(&plan));
      }
      locks = build_locks();
    }
    acquired = Status::OK();
    std::vector<std::pair<SiteId, ObjectId>> held;
    for (const auto& [site, object] : locks) {
      TableLockMsg msg;
      msg.type = MsgType::kTableLock;
      msg.object_id = object;
      msg.owner_site = self;
      auto r = net->Call(self, site, msg.Encode());
      if (!r.ok()) {
        acquired = r.status();
        break;
      }
      held.emplace_back(site, object);
    }
    if (acquired.ok()) break;
    for (const auto& [site, object] : held) {
      TableLockMsg msg;
      msg.type = MsgType::kTableUnlock;
      msg.object_id = object;
      msg.owner_site = self;
      (void)net->Call(self, site, msg.Encode());
    }
  }
  HARBOR_RETURN_NOT_OK(acquired);

  // A recovering site dying while it holds its buddies' table read locks is
  // §5.5.1's hard case: this point deliberately returns WITHOUT the unlock
  // loop below (crash action only) — the buddies' crash subscribers must
  // release the orphaned recovery locks.
  HARBOR_FAULT_POINT("recovery.phase3.locks_held", self);

  // With the locks held no pending update transaction touching these
  // objects can commit; copy the final delta with ordinary (non-historical)
  // SEE DELETED queries (§5.4.1). The deltas stream in bounded chunks like
  // Phase 2 — in parallel across objects, since the locks are already held
  // on every piece — but with no durable watermark and no failover: the
  // locks bind this attempt to these specific replicas, so a failure here
  // restarts the attempt, and Phase 1 removes any partial Phase-3 copies
  // (they sit past the object checkpoint).
  auto copy_final_delta = [this](ObjectPlan* plan) -> Status {
    for (const RecoveryObject& piece : plan->cover) {
      HARBOR_RETURN_NOT_OK(ApplyRemoteDeletions(
          plan, piece, /*ins_after=*/0, plan->hwm, plan->hwm, /*hwm=*/0,
          /*historical=*/false, &plan->stats.phase3_deletions_copied,
          /*retriable=*/nullptr));
      StreamWindow window;
      window.lo = plan->hwm;  // hi stays 0: unbounded, the buddy pins a cap
      HARBOR_RETURN_NOT_OK(CopyRemoteInsertions(
          plan, piece, window, /*hwm=*/0, /*historical=*/false,
          /*durable_watermarks=*/false, /*cursor=*/nullptr, /*cap=*/nullptr,
          &plan->stats.phase3_tuples_copied, /*retriable=*/nullptr));
    }
    return Status::OK();
  };
  Status st = Status::OK();
  if (options_.parallel && plans->size() > 1) {
    std::vector<std::function<Status()>> jobs;
    jobs.reserve(plans->size());
    for (size_t i = 0; i < plans->size(); ++i) {
      jobs.push_back([&, i] { return copy_final_delta(&(*plans)[i]); });
    }
    for (const Status& s :
         runtime::RunParallel(worker_->scheduler(), std::move(jobs))) {
      if (!s.ok()) {
        st = s;
        break;
      }
    }
  } else {
    for (ObjectPlan& plan : *plans) {
      st = copy_final_delta(&plan);
      if (!st.ok()) break;
    }
  }

  Timestamp checkpoint_time = worker_->authority()->Now() - 1;
  if (st.ok()) {
    st = worker_->pool()->FlushAll();
  }
  if (st.ok()) {
    for (ObjectPlan& plan : *plans) {
      st = plan.obj->file->SyncHeaderIfDirty();
      if (!st.ok()) break;
      st = worker_->WriteObjectCheckpoint(plan.obj->object_id,
                                          checkpoint_time);
      if (!st.ok()) break;
    }
  }

  // Join pending transactions: tell every coordinator that rec on S is
  // coming online; the reply is the "all done" of Figure 5-4.
  if (st.ok()) {
    // Funneled into st (not the return macro) so the lock release below
    // still runs and a clean retry is possible.
    if (fault::FaultInjector* fi = fault::FaultInjector::Current()) {
      st = fi->OnPoint("recovery.phase3.coming_online", self,
                       fault::CrashMode::kSync);
    }
  }
  if (st.ok()) {
    ComingOnlineMsg online;
    online.site = self;
    for (const ObjectPlan& plan : *plans) {
      online.objects.emplace_back(plan.obj->table_id, plan.obj->partition);
    }
    for (SiteId coordinator : options_.coordinators) {
      auto r = net->Call(self, coordinator, online.Encode());
      if (!r.ok() && !r.status().IsUnavailable()) {
        st = r.status();
        break;
      }
    }
  }

  // Release the recovery locks whether or not we succeeded; a failure path
  // restarts recovery and must not leave buddies blocked (§5.5).
  for (const auto& [site, object] : locks) {
    TableLockMsg msg;
    msg.type = MsgType::kTableUnlock;
    msg.object_id = object;
    msg.owner_site = self;
    (void)net->Call(self, site, msg.Encode());
  }
  HARBOR_RETURN_NOT_OK(st);

  // All objects recovered: collapse to a single global checkpoint (§5.3).
  HARBOR_RETURN_NOT_OK(worker_->PromoteGlobalCheckpoint(checkpoint_time));
  worker_->liveness()->Set(self, SiteState::kOnline);
  *out_seconds = watch.ElapsedSeconds();
  if (obs::Enabled()) {
    obs::Observe(self, obs::HistogramId::kRecoveryPhase3Ns,
                 watch.ElapsedNanos());
    int64_t tuples = 0;
    int64_t deletions = 0;
    for (const ObjectPlan& plan : *plans) {
      tuples += static_cast<int64_t>(plan.stats.phase3_tuples_copied);
      deletions += static_cast<int64_t>(plan.stats.phase3_deletions_copied);
    }
    obs::Count(self, obs::CounterId::kRecoveryPhase3Tuples, tuples);
    obs::Count(self, obs::CounterId::kRecoveryPhase3Deletions, deletions);
    obs::Trace(self, "recovery.phase3.done", 0, tuples, deletions);
  }
  return Status::OK();
}

// --------------------------------------------------------------- driver

Result<RecoveryStats> RecoveryManager::Recover() {
  Status last = Status::OK();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (!worker_->running()) {
      // The recovering site itself died mid-recovery (its runtime is gone);
      // a retry would touch freed state. The caller restarts the site and
      // runs a fresh RecoveryManager.
      last = Status::Unavailable("recovering site went down mid-recovery");
      break;
    }
    worker_->PauseCheckpoints(true);
    obs::Trace(worker_->site_id(), "recovery.begin", 0, attempt + 1);
    RecoveryStats stats;
    Stopwatch total;

    HARBOR_ASSIGN_OR_RETURN(CheckpointRecord ckpt, worker_->LastCheckpoint());
    std::vector<ObjectPlan> plans;
    for (TableObject* obj : worker_->local_catalog()->objects()) {
      ObjectPlan plan;
      plan.obj = obj;
      plan.checkpoint = ckpt.TimeFor(obj->object_id);
      plan.hwm = plan.checkpoint;
      if (const std::vector<StreamResume>* r =
              ckpt.ResumeFor(obj->object_id)) {
        plan.resume = *r;  // previous attempt died mid-stream (§5.5.2)
      }
      plan.stats.object_id = obj->object_id;
      plans.push_back(std::move(plan));
    }

    // Phases 1-2, per object — in parallel when configured (§5.1: "multiple
    // rec objects ... recovered in parallel; each object proceeds through
    // the phases at its own pace").
    auto run_offline_phases = [this](ObjectPlan* plan) -> Status {
      HARBOR_RETURN_NOT_OK(RunPhase1(plan));
      return RunPhase2(plan);
    };
    Stopwatch offline_watch;
    std::vector<Status> results(plans.size(), Status::OK());
    if (options_.parallel && plans.size() > 1) {
      std::vector<std::function<Status()>> jobs;
      jobs.reserve(plans.size());
      for (size_t i = 0; i < plans.size(); ++i) {
        jobs.push_back([&, i] { return run_offline_phases(&plans[i]); });
      }
      results = runtime::RunParallel(worker_->scheduler(), std::move(jobs));
    } else {
      for (size_t i = 0; i < plans.size(); ++i) {
        results[i] = run_offline_phases(&plans[i]);
      }
    }
    const double offline_seconds = offline_watch.ElapsedSeconds();
    last = Status::OK();
    for (const Status& s : results) {
      if (!s.ok()) last = s;
    }
    if (!last.ok()) {
      // Recovery buddy failed mid-phase past what in-stream failover could
      // absorb: restart with a fresh plan (§5.5.2) from the per-object
      // checkpoints and stream watermarks already recorded.
      continue;
    }

    double phase3_seconds = 0;
    last = RunPhase3(&plans, &phase3_seconds);
    if (!last.ok()) continue;

    const bool ran_parallel = options_.parallel && plans.size() > 1;
    for (const ObjectPlan& plan : plans) {
      stats.objects.push_back(plan.stats);
      if (ran_parallel) {
        stats.phase1_seconds =
            std::max(stats.phase1_seconds, plan.stats.phase1_seconds);
        stats.phase2_seconds =
            std::max(stats.phase2_seconds, plan.stats.phase2_seconds);
      } else {
        stats.phase1_seconds += plan.stats.phase1_seconds;
        stats.phase2_seconds += plan.stats.phase2_seconds;
      }
    }
    stats.offline_seconds = offline_seconds;
    stats.phase3_seconds = phase3_seconds;
    stats.total_seconds = total.ElapsedSeconds();
    worker_->PauseCheckpoints(false);
    obs::Trace(worker_->site_id(), "recovery.done", 0,
               static_cast<int64_t>(stats.total_seconds * 1e9));
    return stats;
  }
  worker_->PauseCheckpoints(false);
  HARBOR_RETURN_NOT_OK(last);
  return Status::Internal("recovery retries exhausted");
}

}  // namespace harbor
