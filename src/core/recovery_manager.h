#ifndef HARBOR_CORE_RECOVERY_MANAGER_H_
#define HARBOR_CORE_RECOVERY_MANAGER_H_

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/worker.h"

namespace harbor {

struct RecoveryOptions {
  /// Recover multiple objects in parallel, one thread per object (§5.1,
  /// evaluated in §6.4).
  bool parallel = true;
  /// Phase-2 catch-up streams per object: the (checkpoint, HWM] insertion
  /// window splits into up to this many disjoint sub-windows, each streamed
  /// from a *different* recovery buddy concurrently. Only full-replica
  /// covers split; partitioned covers keep one serial stream per piece.
  /// 1 = the classic single-stream behavior.
  int max_parallel_streams = 1;
  /// Re-run Phase 2 while the stable time has moved more than this past the
  /// object's HWM, up to the round cap (§5.3: "Phase 2 can be repeated
  /// additional times before proceeding to Phase 3").
  Timestamp phase2_lag_threshold = 2;
  int max_phase2_rounds = 4;
  /// Whole-recovery retry attempts after a recovery-buddy failure (§5.5.2).
  int max_attempts = 3;
  /// Catch-up chunk size: remote phase-2/3 scans return at most ~this many
  /// tuples per reply, fetched as a double-buffered pipeline (chunk N+1 is
  /// in flight while chunk N applies). 0 = one monolithic reply per scan.
  size_t stream_chunk_tuples = 512;
  /// Advance the durable phase-2 resume watermark every N applied chunks,
  /// so a buddy failure mid-stream resumes instead of re-copying the
  /// object. Each advance costs a FlushAll + forced checkpoint write;
  /// 0 disables mid-stream watermarks.
  int watermark_interval_chunks = 8;
  /// Coordinator sites to notify with "coming online" (§5.4.2).
  std::vector<SiteId> coordinators;
};

/// Per-object recovery measurements; the basis of Figures 6-4 to 6-6.
struct ObjectRecoveryStats {
  ObjectId object_id = 0;
  double phase1_seconds = 0;
  double phase2_seconds = 0;         // whole Phase 2 wall time, this object
  double phase2_delete_seconds = 0;  // SELECT + UPDATE of deletions (§5.3)
  double phase2_insert_seconds = 0;  // SELECT + INSERT of new tuples
  size_t phase1_removed = 0;
  size_t phase1_undeleted = 0;
  size_t phase2_deletions_copied = 0;
  size_t phase2_tuples_copied = 0;
  size_t phase3_deletions_copied = 0;
  size_t phase3_tuples_copied = 0;
  int phase2_rounds = 0;
  Timestamp hwm = 0;
};

/// Aggregate timings. phase1/phase2 are derived from the per-object
/// measurements — max across objects when they recovered in parallel, sum
/// when serial — while offline_seconds is the directly-measured wall time
/// of phases 1+2 together (it bounds phase1+phase2 from above; the old code
/// instead *defined* phase2 as offline minus max(phase1), which mixed
/// per-object and aggregate clocks and went wrong under parallel recovery).
struct RecoveryStats {
  double phase1_seconds = 0;
  double phase2_seconds = 0;
  double phase3_seconds = 0;
  double offline_seconds = 0;  // measured wall time of phases 1+2
  double total_seconds = 0;
  std::vector<ObjectRecoveryStats> objects;
};

/// \brief HARBOR's three-phase replica-query recovery (Chapter 5).
///
/// Runs on a restarted worker whose endpoint is up in the kRecovering state:
///  - Phase 1 restores the local state to the last checkpoint by removing
///    tuples inserted after it (or uncommitted) and undoing deletions after
///    it — two local queries driven by the segment directory (§5.2).
///  - Phase 2 catches up to a high water mark with *lock-free historical
///    queries* against recovery buddies chosen from the catalog; the system
///    is never quiesced (§5.3). With max_parallel_streams > 1 the catch-up
///    range splits into disjoint insertion-time windows streamed from
///    different buddies concurrently; each stream carries its own durable
///    resume watermark, and a buddy dying mid-stream fails the stream over
///    to another replica at the cursor instead of restarting the round.
///  - Phase 3 takes table-granularity read locks on every recovery object
///    at once, copies the final delta with ordinary queries, then joins
///    pending transactions through the coordinator and comes online (§5.4).
///
/// Unsurvivable buddy failures restart the affected recovery with a fresh
/// plan (§5.5.2); failures of the recovering site itself simply leave its
/// per-object checkpoints behind for the next attempt (§5.5.1).
class RecoveryManager {
 public:
  RecoveryManager(Worker* worker, RecoveryOptions options);

  /// Recovers every local object and brings the site online.
  Result<RecoveryStats> Recover();

 private:
  struct ObjectPlan {
    TableObject* obj = nullptr;
    Timestamp checkpoint = 0;
    Timestamp hwm = 0;
    std::vector<RecoveryObject> cover;
    /// Durable mid-stream watermarks loaded from the checkpoint record: the
    /// previous attempt died inside Phase-2 catch-up streams, and within
    /// each stream's insertion-time window every version key
    /// <= (insertion_ts, tuple_id) is already on disk.
    std::vector<StreamResume> resume;
    ObjectRecoveryStats stats;
  };

  /// One phase-2 catch-up stream's slice of the round: the half-open
  /// insertion-time window (lo, hi] of the (checkpoint, HWM] range, plus
  /// the durable watermark to resume from, if any. hi == 0 means
  /// "unbounded above" (the serving buddy pins a cap instead).
  struct StreamWindow {
    uint32_t stream_index = 0;
    Timestamp lo = 0;  // exclusive
    Timestamp hi = 0;  // inclusive; 0 = unbounded (cap pinned by the buddy)
    std::optional<StreamResume> resume;
  };

  /// In-memory continuation cursor of a live stream: the last applied
  /// (insertion_ts, tuple_id). Failover re-issues the scan strictly past it.
  using StreamCursor = std::optional<std::pair<Timestamp, TupleId>>;

  Status RunPhase1(ObjectPlan* plan);
  Status RunPhase2(ObjectPlan* plan);
  Status RunPhase2Round(ObjectPlan* plan, Timestamp hwm);
  Status RunPhase3(std::vector<ObjectPlan>* plans, double* out_seconds);

  Status ComputeCover(ObjectPlan* plan);
  /// Splits the round's (checkpoint, hwm] range into up to max_streams
  /// disjoint windows — or, when durable watermarks exist, reconstructs the
  /// interrupted round's windows from them and covers any gaps with fresh
  /// windows under fresh stream indexes.
  std::vector<StreamWindow> PlanWindows(const ObjectPlan& plan, Timestamp hwm,
                                        size_t max_streams) const;
  /// Runs one phase-2 window to completion against the replica pool:
  /// deletion pass (when the window owns one) then the insertion stream.
  /// A buddy dying mid-stream (kUnavailable from the wire, never a local
  /// apply failure) fails over to the next usable replica at the in-memory
  /// cursor. Local applies of concurrent same-object streams run without
  /// mutual exclusion — page latches and the internally-locked index /
  /// segment-header / checkpoint structures carry the safety — so stats_mu
  /// only guards the final merge into plan->stats (nullptr when the window
  /// runs alone).
  Status RunStream(ObjectPlan* plan, const std::vector<RecoveryObject>& pool,
                   const StreamWindow& window, Timestamp hwm,
                   std::mutex* stats_mu);
  /// Abandons unresumable watermarks: wipes everything past the object
  /// checkpoint and durably clears the resume entries so the round restarts
  /// cleanly from the object checkpoint.
  Status DiscardResume(ObjectPlan* plan);
  /// Runs one remote scan as a pipelined chunk stream: chunk N+1 is fetched
  /// with CallAsync while `apply` consumes chunk N. With
  /// stream_chunk_tuples == 0 this degenerates to one blocking Call.
  Status StreamScan(const RecoveryObject& piece, ScanMsg msg,
                    const std::function<Status(ScanReplyMsg&)>& apply);
  /// Ships deletion times for tuples with ins_after < insertion_ts <=
  /// ins_at_or_before (ins_after == 0 leaves the lower bound unset) and
  /// deletion_ts > del_after. retriable (may be nullptr) reports whether a
  /// failure came from the wire (safe to fail over) rather than the local
  /// apply.
  Status ApplyRemoteDeletions(ObjectPlan* plan, const RecoveryObject& piece,
                              Timestamp ins_after, Timestamp ins_at_or_before,
                              Timestamp del_after, Timestamp hwm,
                              bool historical, size_t* copied,
                              bool* retriable);
  /// Streams the window's insertions from `piece`, resuming strictly past
  /// *cursor when set and updating it after every applied chunk; *cap
  /// carries the buddy-pinned insertion cap across failover. cursor/cap may
  /// be nullptr (phase 3: no failover).
  Status CopyRemoteInsertions(ObjectPlan* plan, const RecoveryObject& piece,
                              const StreamWindow& window, Timestamp hwm,
                              bool historical, bool durable_watermarks,
                              StreamCursor* cursor, Timestamp* cap,
                              size_t* copied, bool* retriable);

  bool BuddyUsable(SiteId site) const;
  /// Prefixes an Unavailable planning failure with the object identity so
  /// exhausted-replica errors surfaced to the caller name what is stuck.
  Status AnnotateUnavailable(const ObjectPlan& plan, Status st) const;

  Worker* const worker_;
  const RecoveryOptions options_;
};

}  // namespace harbor

#endif  // HARBOR_CORE_RECOVERY_MANAGER_H_
