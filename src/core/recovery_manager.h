#ifndef HARBOR_CORE_RECOVERY_MANAGER_H_
#define HARBOR_CORE_RECOVERY_MANAGER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/worker.h"

namespace harbor {

struct RecoveryOptions {
  /// Recover multiple objects in parallel, one thread per object (§5.1,
  /// evaluated in §6.4).
  bool parallel = true;
  /// Re-run Phase 2 while the stable time has moved more than this past the
  /// object's HWM, up to the round cap (§5.3: "Phase 2 can be repeated
  /// additional times before proceeding to Phase 3").
  Timestamp phase2_lag_threshold = 2;
  int max_phase2_rounds = 4;
  /// Whole-recovery retry attempts after a recovery-buddy failure (§5.5.2).
  int max_attempts = 3;
  /// Coordinator sites to notify with "coming online" (§5.4.2).
  std::vector<SiteId> coordinators;
};

/// Per-object recovery measurements; the basis of Figures 6-4 to 6-6.
struct ObjectRecoveryStats {
  ObjectId object_id = 0;
  double phase1_seconds = 0;
  double phase2_delete_seconds = 0;  // SELECT + UPDATE of deletions (§5.3)
  double phase2_insert_seconds = 0;  // SELECT + INSERT of new tuples
  size_t phase1_removed = 0;
  size_t phase1_undeleted = 0;
  size_t phase2_deletions_copied = 0;
  size_t phase2_tuples_copied = 0;
  size_t phase3_deletions_copied = 0;
  size_t phase3_tuples_copied = 0;
  int phase2_rounds = 0;
  Timestamp hwm = 0;
};

struct RecoveryStats {
  double phase1_seconds = 0;  // max across objects (parallel) or sum
  double phase2_seconds = 0;
  double phase3_seconds = 0;
  double total_seconds = 0;
  std::vector<ObjectRecoveryStats> objects;
};

/// \brief HARBOR's three-phase replica-query recovery (Chapter 5).
///
/// Runs on a restarted worker whose endpoint is up in the kRecovering state:
///  - Phase 1 restores the local state to the last checkpoint by removing
///    tuples inserted after it (or uncommitted) and undoing deletions after
///    it — two local queries driven by the segment directory (§5.2).
///  - Phase 2 catches up to a high water mark with *lock-free historical
///    queries* against recovery buddies chosen from the catalog; the system
///    is never quiesced (§5.3).
///  - Phase 3 takes table-granularity read locks on every recovery object
///    at once, copies the final delta with ordinary queries, then joins
///    pending transactions through the coordinator and comes online (§5.4).
///
/// Buddy failures restart the affected recovery with a fresh plan (§5.5.2);
/// failures of the recovering site itself simply leave its per-object
/// checkpoints behind for the next attempt (§5.5.1).
class RecoveryManager {
 public:
  RecoveryManager(Worker* worker, RecoveryOptions options);

  /// Recovers every local object and brings the site online.
  Result<RecoveryStats> Recover();

 private:
  struct ObjectPlan {
    TableObject* obj = nullptr;
    Timestamp checkpoint = 0;
    Timestamp hwm = 0;
    std::vector<RecoveryObject> cover;
    ObjectRecoveryStats stats;
  };

  Status RunPhase1(ObjectPlan* plan);
  Status RunPhase2(ObjectPlan* plan);
  Status RunPhase2Round(ObjectPlan* plan, Timestamp hwm);
  Status RunPhase3(std::vector<ObjectPlan>* plans, double* out_seconds);

  Status ComputeCover(ObjectPlan* plan);
  Status ApplyRemoteDeletions(ObjectPlan* plan, const RecoveryObject& piece,
                              Timestamp from_exclusive, Timestamp hwm,
                              bool historical, size_t* copied);
  Status CopyRemoteInsertions(ObjectPlan* plan, const RecoveryObject& piece,
                              Timestamp from_exclusive, Timestamp hwm,
                              bool historical, size_t* copied);

  bool BuddyUsable(SiteId site) const;

  Worker* const worker_;
  const RecoveryOptions options_;
};

}  // namespace harbor

#endif  // HARBOR_CORE_RECOVERY_MANAGER_H_
