#ifndef HARBOR_CORE_UPDATE_REQUEST_H_
#define HARBOR_CORE_UPDATE_REQUEST_H_

#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "common/types.h"
#include "exec/dml.h"
#include "exec/predicate.h"
#include "storage/value.h"

namespace harbor {

/// \brief One logical update of a transaction, as queued by the coordinator
/// (§4.1: "Each update request can be represented simply by the update's SQL
/// statement or a parsed version of that statement" — this is the parsed
/// version).
///
/// The queue of these per transaction is what lets a recovering site join
/// pending transactions (§5.4.2): the coordinator forwards the relevant
/// requests verbatim.
struct UpdateRequest {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1, kUpdate = 2 };

  Kind kind = Kind::kInsert;
  TableId table_id = 0;

  // kInsert: values in the table's logical schema order, plus the
  // coordinator-assigned tuple id shared by every replica (§5.3).
  std::vector<Value> values;
  TupleId tuple_id = 0;

  // kDelete / kUpdate:
  Predicate predicate;
  std::vector<SetClause> sets;  // kUpdate only

  /// Simulated per-site CPU work attached to this request: ETL processing,
  /// compression, derived fields, materialized-view maintenance (§6.3.2).
  int64_t cpu_work_cycles = 0;

  void Serialize(ByteBufferWriter* out) const;
  static Result<UpdateRequest> Deserialize(ByteBufferReader* in);
  std::string ToString() const;
};

}  // namespace harbor

#endif  // HARBOR_CORE_UPDATE_REQUEST_H_
