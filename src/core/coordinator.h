#ifndef HARBOR_CORE_COORDINATOR_H_
#define HARBOR_CORE_COORDINATOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/global_catalog.h"
#include "core/liveness.h"
#include "core/messages.h"
#include "core/protocol.h"
#include "exec/predicate.h"
#include "net/network.h"
#include "sim/sim_disk.h"
#include "txn/snapshot_tracker.h"
#include "txn/timestamp_authority.h"
#include "wal/log_manager.h"

namespace harbor {

struct CoordinatorOptions {
  SiteId site_id = 0;
  std::string dir;
  SimConfig sim = SimConfig::Zero();
  CommitProtocol protocol = CommitProtocol::kOptimized3PC;
  bool group_commit = true;
  int server_threads = 4;
  /// §4.3.5: commit with K-1 safety when a worker crashes mid-transaction
  /// instead of aborting.
  bool continue_on_worker_failure = false;
  /// How stale (in epochs behind Now) the cached snapshot mark may be before
  /// SnapshotTime() re-consults the authority. Larger values make snapshot
  /// reads cheaper under load at the price of older snapshots.
  int64_t snapshot_max_lag_epochs = 1;
};

/// How Query() reads (§3.1 vs §3.3).
enum class ReadMode : uint8_t {
  /// Default: lock-free read at a recent cluster-wide stable timestamp.
  /// Never blocks on or interferes with writers; may miss commits still in
  /// flight at other coordinators.
  kSnapshot = 0,
  /// Up-to-date read transaction with shared page locks.
  kLocking = 1,
};

/// \brief The transaction coordinator (§4.1): distributes update requests to
/// all live sites holding the relevant data, maintains each transaction's
/// in-memory queue of logical update requests (the state a recovering site
/// joins from, §5.4.2), runs the configured commit protocol, and serves the
/// recovery-side services (coming-online, in-doubt resolution).
class Coordinator {
 public:
  Coordinator(Network* network, GlobalCatalog* catalog,
              TimestampAuthority* authority, LivenessDirectory* liveness,
              CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  Status Start();
  /// Fail-stop crash (coordinator state is volatile except its 2PC log).
  void Crash();
  /// Restart: under 2PC, completes transactions whose COMMIT record is
  /// durable but whose workers were never told (re-sends COMMIT; workers
  /// treat duplicates idempotently).
  Status Restart();
  bool running() const { return running_.load(); }

  // --- Client transaction API ---
  Result<TxnId> Begin();
  Status Insert(TxnId txn, TableId table, std::vector<Value> values,
                int64_t cpu_work_cycles = 0);
  Status Delete(TxnId txn, TableId table, Predicate predicate);
  Status Update(TxnId txn, TableId table, Predicate predicate,
                std::vector<SetClause> sets);
  /// Runs the configured commit protocol; returns kAborted if the
  /// transaction could not commit.
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  /// Convenience: one single-row insert transaction (the Figure 6-2
  /// workload unit).
  Status InsertTxn(TableId table, std::vector<Value> values,
                   int64_t cpu_work_cycles = 0);
  /// Convenience: one predicate update / delete as its own transaction
  /// (the trickle-update unit driven by the workload front-end).
  Status UpdateTxn(TableId table, Predicate predicate,
                   std::vector<SetClause> sets);
  Status DeleteTxn(TableId table, Predicate predicate);

  // --- Reads ---
  /// Historical read-only query at time `as_of` (lock-free, §3.3); `as_of`
  /// must be <= the authority's StableTime. Results use the logical schema.
  Result<std::vector<Tuple>> HistoricalQuery(TableId table,
                                             const Predicate& predicate,
                                             Timestamp as_of);
  /// Read-only query. The default mode serves a lock-free scan at
  /// SnapshotTime(); ReadMode::kLocking forces the S-locking read
  /// transaction path.
  Result<std::vector<Tuple>> Query(TableId table, const Predicate& predicate,
                                   ReadMode mode = ReadMode::kSnapshot);

  /// The stable timestamp the next snapshot read will use. Served from the
  /// piggyback-learned low-water mark when it is fresh enough (lock-free);
  /// falls back to the authority — advancing the epoch if needed so this
  /// coordinator's own latest commit is visible (read-your-writes for
  /// sequential callers).
  Timestamp SnapshotTime();

  /// Fresh tuple id for an insert (shared by all replicas of the tuple).
  TupleId NextTupleId();

  int64_t committed() const { return committed_.load(); }
  int64_t aborted() const { return aborted_.load(); }
  LogManager* log() { return log_.get(); }
  SimDisk* log_disk() { return log_disk_.get(); }
  SiteId site_id() const { return options_.site_id; }
  const CoordinatorOptions& options() const { return options_; }

 private:
  struct CoordTxn {
    explicit CoordTxn(TxnId id) : id(id) {}
    const TxnId id;
    std::mutex mu;
    std::vector<UpdateRequest> queue;  // §4.1 per-transaction update queue
    std::vector<SiteId> workers;       // participants (received updates)
    bool failed = false;               // a worker died mid-transaction
    bool finished = false;             // commit/abort already ran
  };

  Result<Message> Handle(SiteId from, const Message& m);
  Result<Message> HandleComingOnline(const ComingOnlineMsg& m);
  Result<Message> HandleResolveTxn(const TxnMsg& m);

  Status Distribute(TxnId txn, UpdateRequest request);
  Result<std::shared_ptr<CoordTxn>> GetTxn(TxnId txn);
  void EraseTxn(TxnId txn);

  /// Broadcasts `m` to `sites` in parallel; returns per-site success.
  std::vector<Status> Broadcast(const std::vector<SiteId>& sites,
                                const Message& m);

  Status RunCommitProtocol(const std::shared_ptr<CoordTxn>& ct);
  Status AbortWithWorkers(const std::shared_ptr<CoordTxn>& ct,
                          const std::vector<SiteId>& prepared_sites);

  /// Lock-free snapshot scan of `table` at stable time `as_of` across an
  /// online cover; re-plans once if a site fails mid-query.
  Result<std::vector<Tuple>> SnapshotQueryAt(TableId table,
                                             const Predicate& predicate,
                                             Timestamp as_of);
  /// StableTime() now, folded into the local mark — the value stamped onto
  /// outgoing commit/abort traffic.
  Timestamp StampStableTime();

  Status LogDecisionForced(TxnId txn, bool commit, Timestamp ts);

  Network* const network_;
  GlobalCatalog* const catalog_;
  TimestampAuthority* const authority_;
  LivenessDirectory* const liveness_;
  const CoordinatorOptions options_;

  std::unique_ptr<SimDisk> log_disk_;
  std::unique_ptr<LogManager> log_;  // only under 2PC protocols

  std::mutex txns_mu_;
  std::unordered_map<TxnId, std::shared_ptr<CoordTxn>> txns_;

  /// Commit/abort outcomes workers have not yet acknowledged; consulted by
  /// kResolveTxn after a worker restart (presumed abort if absent).
  mutable std::mutex unresolved_mu_;
  std::unordered_map<TxnId, std::pair<bool, Timestamp>> unresolved_;

  /// Blocks new update distribution while a recovering site joins pending
  /// transactions, eliminating forward/new-update races (§5.4.2).
  std::shared_mutex online_gate_;

  /// Low-water mark of cluster-wide stable time, fed by this coordinator's
  /// own StableTime() reads; SnapshotTime()'s lock-free fast path.
  SnapshotTracker snapshots_;
  /// Newest commit timestamp this coordinator successfully committed; the
  /// freshness floor for SnapshotTime (read-your-writes).
  SnapshotTracker last_commit_;

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> txn_counter_{0};
  std::atomic<uint64_t> tuple_counter_{0};
  uint64_t restart_epoch_ = 0;
  std::atomic<int64_t> committed_{0};
  std::atomic<int64_t> aborted_{0};
};

}  // namespace harbor

#endif  // HARBOR_CORE_COORDINATOR_H_
