#ifndef HARBOR_FAULT_FAULT_INJECTOR_H_
#define HARBOR_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/types.h"

namespace harbor::fault {

/// Wildcard site for fault specs: matches every site.
inline constexpr SiteId kAnySite = kInvalidSiteId;

/// What a fault does when it fires. kCrash/kError/kDelay apply to fault
/// points; kDrop/kDuplicate/kDelay apply to network links.
enum class FaultAction : uint8_t {
  kCrash = 0,      // run the site's registered crash handler (fail-stop)
  kError = 1,      // return an injected kInternal error from the point
  kDelay = 2,      // sleep delay_ms, then continue normally
  kDrop = 3,       // drop the message (caller sees kUnavailable)
  kDuplicate = 4,  // deliver the message twice (exercises idempotency)
};

const char* FaultActionName(FaultAction a);

/// A one-shot fault at a named trip-wire threaded through the commit and
/// recovery state machines (e.g. "coordinator.after_prepare"). Fires on the
/// `hit`-th matching execution of the point, then disarms.
struct PointFault {
  std::string point;
  SiteId site = kAnySite;  // restrict to one site; kAnySite = any hitter
  uint64_t hit = 1;        // 1-based: fire on the Nth matching hit
  FaultAction action = FaultAction::kCrash;
  int64_t delay_ms = 0;    // only for kDelay
};

/// A probabilistic per-link message fault consulted on every Network call.
struct LinkFault {
  SiteId from = kAnySite;
  SiteId to = kAnySite;
  uint16_t msg_type = 0;  // MsgType value; 0 = any
  FaultAction action = FaultAction::kDrop;
  double probability = 1.0;  // per-matching-message fire probability
  uint64_t max_fires = std::numeric_limits<uint64_t>::max();
  int64_t delay_ms = 0;  // only for kDelay
};

/// \brief A serializable fault schedule: everything needed to reproduce a
/// chaos run exactly — the RNG seed for probabilistic link faults plus the
/// full list of point and link fault specs.
///
/// Text grammar (';'-separated entries, ','-separated fields):
///   seed=<N>
///   point=<name>[,site=<N>][,hit=<N>],action=<crash|error|delay>[,ms=<N>]
///   link=<from|*>-><to|*>[,type=<N>],action=<drop|dup|delay>
///        [,p=<F>][,max=<N>][,ms=<N>]
struct ChaosSchedule {
  uint64_t seed = 42;
  std::vector<PointFault> points;
  std::vector<LinkFault> links;

  std::string ToString() const;
  static Result<ChaosSchedule> Parse(const std::string& text);
};

/// How a crash action runs relative to the tripping context. Message
/// handlers must use kAsync: the crash handler (e.g. Worker::Crash) drains
/// the site's in-flight handlers, so running it inline from one would
/// deadlock. Async crashes run as a task on the tripping task's own
/// scheduler (runtime::CurrentScheduler()), falling back to a short-lived
/// injector-owned thread off the pool. Client / recovery / consensus
/// contexts use kSync so the crash completes before the injected error
/// propagates (no torn runtime behind the error).
enum class CrashMode : uint8_t { kSync = 0, kAsync = 1 };

/// Verdict for one message, combined across all matching link faults.
struct LinkDecision {
  bool drop = false;
  bool duplicate = false;
  int64_t delay_ms = 0;
};

class FaultInjector;

namespace internal {
/// The installed injector; null almost always. Fault points reduce to one
/// acquire load and an unlikely branch when nothing is installed.
extern std::atomic<FaultInjector*> g_current;
}  // namespace internal

/// \brief Deterministic fault injector: evaluates a ChaosSchedule against
/// named fault points and network links. At most one injector is installed
/// at a time (tests install in SetUp scope and uninstall before teardown —
/// declare the injector after the cluster so it is destroyed first).
class FaultInjector {
 public:
  explicit FaultInjector(ChaosSchedule schedule);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The crash action for `site` invokes `handler` (e.g. worker->Crash()).
  /// A crash for a site with no handler is a no-op.
  void RegisterCrashHandler(SiteId site, std::function<void()> handler);

  void Install();
  /// Removes the injector and joins any async crash threads it spawned.
  void Uninstall();

  static FaultInjector* Current() {
    return internal::g_current.load(std::memory_order_acquire);
  }

  /// Called by the HARBOR_FAULT_POINT* macros. Returns non-OK when a fault
  /// fires with kError (kInternal) or kCrash (kUnavailable, after running
  /// the crash handler per `mode`).
  Status OnPoint(const char* point, SiteId site, CrashMode mode);

  /// Called by Network::CallAsync for every message.
  LinkDecision OnMessage(SiteId from, SiteId to, uint16_t msg_type);

  /// Waits until every async crash handler has finished (also done by
  /// Uninstall / the destructor) and reaps any fallback crash threads.
  void WaitForCrashes();

  /// Human-readable log of every fault that fired, in firing order.
  std::vector<std::string> fired() const;

  /// Test introspection: fallback crash-thread handles currently retained.
  /// Stays bounded by the number of *concurrently running* fallback crashes
  /// (finished handles are reaped on every spawn).
  int pending_crash_threads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(crash_threads_.size());
  }

  const ChaosSchedule& schedule() const { return schedule_; }

 private:
  struct PointState {
    uint64_t hits = 0;
    bool fired = false;
  };
  struct LinkState {
    uint64_t fires = 0;
  };
  /// A fallback crash thread (used when the tripping thread is not a pool
  /// task). `finished` flips after the handler returns, making the handle
  /// safe to join without blocking on live work — ReapLocked() joins
  /// finished entries on every spawn, so the list stays bounded by the
  /// number of *concurrently running* crashes instead of growing for the
  /// whole chaos run (crashes used to accumulate un-joined until
  /// Uninstall).
  struct CrashThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;
  };

  void RunCrash(SiteId target, CrashMode mode);
  void ReapLocked();

  const ChaosSchedule schedule_;
  mutable std::mutex mu_;
  std::condition_variable crash_cv_;  // crash_inflight_ reached zero
  std::vector<PointState> point_state_;
  std::vector<LinkState> link_state_;
  Random rng_;  // seeded from schedule_.seed; guarded by mu_
  std::unordered_map<SiteId, std::function<void()>> crash_handlers_;
  /// Async crash handlers still running (scheduler tasks + fallback
  /// threads). WaitForCrashes waits for zero.
  int crash_inflight_ = 0;
  std::vector<CrashThread> crash_threads_;
  std::vector<std::string> fired_;
};

}  // namespace harbor::fault

/// Fault point for Status- or Result<T>-returning code running OUTSIDE the
/// site's own message-handler threads (client commit path, recovery,
/// consensus). A crash action completes inline before the error returns.
#define HARBOR_FAULT_POINT(point_name, site_id)                            \
  do {                                                                     \
    ::harbor::fault::FaultInjector* _harbor_fi =                           \
        ::harbor::fault::FaultInjector::Current();                         \
    if (__builtin_expect(_harbor_fi != nullptr, 0)) {                      \
      ::harbor::Status _harbor_fst = _harbor_fi->OnPoint(                  \
          (point_name), (site_id), ::harbor::fault::CrashMode::kSync);     \
      if (!_harbor_fst.ok()) return _harbor_fst;                           \
    }                                                                      \
  } while (0)

/// Fault point for message handlers: a crash action runs asynchronously
/// (on the handler's scheduler, or an injector-owned fallback thread) while
/// the handler returns kUnavailable (the paper's abruptly-closed-socket
/// failure signal, §5.5.1).
#define HARBOR_FAULT_POINT_ASYNC(point_name, site_id)                      \
  do {                                                                     \
    ::harbor::fault::FaultInjector* _harbor_fi =                           \
        ::harbor::fault::FaultInjector::Current();                         \
    if (__builtin_expect(_harbor_fi != nullptr, 0)) {                      \
      ::harbor::Status _harbor_fst = _harbor_fi->OnPoint(                  \
          (point_name), (site_id), ::harbor::fault::CrashMode::kAsync);    \
      if (!_harbor_fst.ok()) return _harbor_fst;                           \
    }                                                                      \
  } while (0)

/// Fault point for void contexts (background threads): delays and async
/// crashes fire; an injected error has nowhere to go and is dropped.
#define HARBOR_FAULT_HIT(point_name, site_id)                              \
  do {                                                                     \
    ::harbor::fault::FaultInjector* _harbor_fi =                           \
        ::harbor::fault::FaultInjector::Current();                         \
    if (__builtin_expect(_harbor_fi != nullptr, 0)) {                      \
      (void)_harbor_fi->OnPoint(                                          \
          (point_name), (site_id), ::harbor::fault::CrashMode::kAsync);    \
    }                                                                      \
  } while (0)

#endif  // HARBOR_FAULT_FAULT_INJECTOR_H_
