#include "fault/fault_injector.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "obs/observer.h"
#include "runtime/scheduler.h"

namespace harbor::fault {

namespace internal {
std::atomic<FaultInjector*> g_current{nullptr};
}  // namespace internal

const char* FaultActionName(FaultAction a) {
  switch (a) {
    case FaultAction::kCrash: return "crash";
    case FaultAction::kError: return "error";
    case FaultAction::kDelay: return "delay";
    case FaultAction::kDrop: return "drop";
    case FaultAction::kDuplicate: return "dup";
  }
  return "?";
}

// ---------------------------------------------------------- serialization

namespace {

std::string SiteToken(SiteId s) {
  return s == kAnySite ? "*" : std::to_string(s);
}

Result<SiteId> ParseSiteToken(const std::string& tok) {
  if (tok == "*") return kAnySite;
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("bad site token '" + tok + "'");
  }
  return static_cast<SiteId>(std::strtoul(tok.c_str(), nullptr, 10));
}

Result<FaultAction> ParseAction(const std::string& tok) {
  if (tok == "crash") return FaultAction::kCrash;
  if (tok == "error") return FaultAction::kError;
  if (tok == "delay") return FaultAction::kDelay;
  if (tok == "drop") return FaultAction::kDrop;
  if (tok == "dup") return FaultAction::kDuplicate;
  return Status::InvalidArgument("unknown fault action '" + tok + "'");
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

/// Splits "key=value"; value empty when there is no '='.
std::pair<std::string, std::string> KeyValue(const std::string& field) {
  size_t eq = field.find('=');
  if (eq == std::string::npos) return {field, ""};
  return {field.substr(0, eq), field.substr(eq + 1)};
}

}  // namespace

std::string ChaosSchedule::ToString() const {
  std::ostringstream out;
  out << "seed=" << seed;
  for (const PointFault& p : points) {
    out << ";point=" << p.point;
    if (p.site != kAnySite) out << ",site=" << p.site;
    if (p.hit != 1) out << ",hit=" << p.hit;
    out << ",action=" << FaultActionName(p.action);
    if (p.delay_ms != 0) out << ",ms=" << p.delay_ms;
  }
  for (const LinkFault& l : links) {
    out << ";link=" << SiteToken(l.from) << "->" << SiteToken(l.to);
    if (l.msg_type != 0) out << ",type=" << l.msg_type;
    out << ",action=" << FaultActionName(l.action);
    if (l.probability < 1.0) out << ",p=" << l.probability;
    if (l.max_fires != std::numeric_limits<uint64_t>::max()) {
      out << ",max=" << l.max_fires;
    }
    if (l.delay_ms != 0) out << ",ms=" << l.delay_ms;
  }
  return out.str();
}

Result<ChaosSchedule> ChaosSchedule::Parse(const std::string& text) {
  ChaosSchedule schedule;
  for (const std::string& entry : Split(text, ';')) {
    if (entry.empty()) continue;
    std::vector<std::string> fields = Split(entry, ',');
    auto [head_key, head_value] = KeyValue(fields[0]);
    if (head_key == "seed") {
      schedule.seed = std::strtoull(head_value.c_str(), nullptr, 10);
    } else if (head_key == "point") {
      PointFault p;
      p.point = head_value;
      if (p.point.empty()) {
        return Status::InvalidArgument("point entry with empty name");
      }
      for (size_t i = 1; i < fields.size(); ++i) {
        auto [key, value] = KeyValue(fields[i]);
        if (key == "site") {
          HARBOR_ASSIGN_OR_RETURN(p.site, ParseSiteToken(value));
        } else if (key == "hit") {
          p.hit = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "action") {
          HARBOR_ASSIGN_OR_RETURN(p.action, ParseAction(value));
        } else if (key == "ms") {
          p.delay_ms = std::strtoll(value.c_str(), nullptr, 10);
        } else {
          return Status::InvalidArgument("unknown point field '" + key + "'");
        }
      }
      if (p.action != FaultAction::kCrash && p.action != FaultAction::kError &&
          p.action != FaultAction::kDelay) {
        return Status::InvalidArgument("action '" +
                                       std::string(FaultActionName(p.action)) +
                                       "' is link-only");
      }
      schedule.points.push_back(std::move(p));
    } else if (head_key == "link") {
      size_t arrow = head_value.find("->");
      if (arrow == std::string::npos) {
        return Status::InvalidArgument("link entry without '->': " + entry);
      }
      LinkFault l;
      HARBOR_ASSIGN_OR_RETURN(l.from,
                              ParseSiteToken(head_value.substr(0, arrow)));
      HARBOR_ASSIGN_OR_RETURN(l.to,
                              ParseSiteToken(head_value.substr(arrow + 2)));
      for (size_t i = 1; i < fields.size(); ++i) {
        auto [key, value] = KeyValue(fields[i]);
        if (key == "type") {
          l.msg_type =
              static_cast<uint16_t>(std::strtoul(value.c_str(), nullptr, 10));
        } else if (key == "action") {
          HARBOR_ASSIGN_OR_RETURN(l.action, ParseAction(value));
        } else if (key == "p") {
          l.probability = std::strtod(value.c_str(), nullptr);
        } else if (key == "max") {
          l.max_fires = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "ms") {
          l.delay_ms = std::strtoll(value.c_str(), nullptr, 10);
        } else {
          return Status::InvalidArgument("unknown link field '" + key + "'");
        }
      }
      if (l.action != FaultAction::kDrop &&
          l.action != FaultAction::kDuplicate &&
          l.action != FaultAction::kDelay) {
        return Status::InvalidArgument("action '" +
                                       std::string(FaultActionName(l.action)) +
                                       "' is point-only");
      }
      schedule.links.push_back(l);
    } else {
      return Status::InvalidArgument("unknown schedule entry '" + entry + "'");
    }
  }
  return schedule;
}

// -------------------------------------------------------------- injector

FaultInjector::FaultInjector(ChaosSchedule schedule)
    : schedule_(std::move(schedule)),
      point_state_(schedule_.points.size()),
      link_state_(schedule_.links.size()),
      rng_(schedule_.seed) {}

FaultInjector::~FaultInjector() { Uninstall(); }

void FaultInjector::RegisterCrashHandler(SiteId site,
                                         std::function<void()> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_handlers_[site] = std::move(handler);
}

void FaultInjector::Install() {
  internal::g_current.store(this, std::memory_order_release);
}

void FaultInjector::Uninstall() {
  FaultInjector* expected = this;
  internal::g_current.compare_exchange_strong(expected, nullptr,
                                              std::memory_order_acq_rel);
  WaitForCrashes();
}

void FaultInjector::WaitForCrashes() {
  std::vector<CrashThread> threads;
  {
    // The wait is a blocking section: a pool task calling this must not
    // starve the pool that is running the crash handlers it waits for.
    runtime::ScopedBlocking block;
    std::unique_lock<std::mutex> lock(mu_);
    crash_cv_.wait(lock, [this] { return crash_inflight_ == 0; });
    threads.swap(crash_threads_);
  }
  for (CrashThread& t : threads) {
    if (t.thread.joinable()) t.thread.join();
  }
}

void FaultInjector::ReapLocked() {
  for (size_t i = 0; i < crash_threads_.size();) {
    if (crash_threads_[i].finished->load(std::memory_order_acquire)) {
      // Finished flips after the handler returned, so this join cannot
      // block on live crash work.
      crash_threads_[i].thread.join();
      crash_threads_[i] = std::move(crash_threads_.back());
      crash_threads_.pop_back();
    } else {
      ++i;
    }
  }
}

std::vector<std::string> FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

void FaultInjector::RunCrash(SiteId target, CrashMode mode) {
  std::function<void()> handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = crash_handlers_.find(target);
    if (it != crash_handlers_.end()) handler = it->second;
  }
  if (!handler) return;
  if (mode == CrashMode::kSync) {
    handler();
    return;
  }
  // Async: run the handler as a task on the tripping task's own scheduler
  // (the crash handler's drain waits are blocking sections, so the pool
  // stays live). The inflight count — not thread handles — is what
  // WaitForCrashes() waits on.
  auto run = [this, handler = std::move(handler)] {
    handler();
    std::lock_guard<std::mutex> lock(mu_);
    if (--crash_inflight_ == 0) crash_cv_.notify_all();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    crash_inflight_++;
  }
  runtime::Scheduler* sched = runtime::CurrentScheduler();
  if (sched != nullptr && sched->Post(run)) return;
  // Off-pool tripping thread (or runtime shutting down): fall back to a
  // dedicated thread, reaping previously finished ones so the list stays
  // bounded instead of leaking joinable handles for the whole run.
  std::lock_guard<std::mutex> lock(mu_);
  ReapLocked();
  CrashThread ct;
  ct.finished = std::make_shared<std::atomic<bool>>(false);
  ct.thread = std::thread([run, finished = ct.finished] {
    run();
    finished->store(true, std::memory_order_release);
  });
  crash_threads_.push_back(std::move(ct));
}

Status FaultInjector::OnPoint(const char* point, SiteId site, CrashMode mode) {
  PointFault spec;
  bool fire = false;
  std::string description;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < schedule_.points.size(); ++i) {
      const PointFault& candidate = schedule_.points[i];
      PointState& state = point_state_[i];
      if (state.fired) continue;
      if (candidate.point != point) continue;
      if (candidate.site != kAnySite && candidate.site != site) continue;
      state.hits++;
      if (state.hits < candidate.hit) continue;
      state.fired = true;
      fire = true;
      spec = candidate;
      description = std::string(point) + "@site" + std::to_string(site) +
                    " action=" + FaultActionName(candidate.action);
      fired_.push_back(description);
      break;
    }
  }
  if (!fire) return Status::OK();
  // The fired fault lands in the event trace so a failing chaos replay shows
  // exactly where in the protocol timeline the fault hit.
  obs::Count(site, obs::CounterId::kFaultsFired);
  obs::TraceDetail(site, "fault.point", std::move(description));
  switch (spec.action) {
    case FaultAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
      return Status::OK();
    case FaultAction::kError:
      return Status::Internal("fault-injected error at " + std::string(point));
    case FaultAction::kCrash: {
      const SiteId target = spec.site != kAnySite ? spec.site : site;
      RunCrash(target, mode);
      return Status::Unavailable("fault-injected crash of site " +
                                 std::to_string(target) + " at " + point);
    }
    default:
      return Status::InvalidArgument("link-only action at fault point " +
                                     std::string(point));
  }
}

LinkDecision FaultInjector::OnMessage(SiteId from, SiteId to,
                                      uint16_t msg_type) {
  LinkDecision decision;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < schedule_.links.size(); ++i) {
    const LinkFault& spec = schedule_.links[i];
    LinkState& state = link_state_[i];
    if (state.fires >= spec.max_fires) continue;
    if (spec.from != kAnySite && spec.from != from) continue;
    if (spec.to != kAnySite && spec.to != to) continue;
    if (spec.msg_type != 0 && spec.msg_type != msg_type) continue;
    if (spec.probability < 1.0 && rng_.NextDouble() >= spec.probability) {
      continue;
    }
    state.fires++;
    switch (spec.action) {
      case FaultAction::kDrop:
        decision.drop = true;
        break;
      case FaultAction::kDuplicate:
        decision.duplicate = true;
        break;
      case FaultAction::kDelay:
        decision.delay_ms = std::max(decision.delay_ms, spec.delay_ms);
        break;
      default:
        break;
    }
    std::string description = "link " + SiteToken(from) + "->" +
                              SiteToken(to) + " type=" +
                              std::to_string(msg_type) +
                              " action=" + FaultActionName(spec.action);
    fired_.push_back(description);
    // Attributed to the sender: the receiver never sees a dropped message.
    obs::Count(from, obs::CounterId::kFaultsFired);
    obs::TraceDetail(from, "fault.link", std::move(description), 0,
                     static_cast<int64_t>(to), msg_type);
  }
  return decision;
}

}  // namespace harbor::fault
