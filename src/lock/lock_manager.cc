#include "lock/lock_manager.h"

#include <algorithm>

#include "obs/observer.h"
#include "runtime/scheduler.h"

namespace harbor {

const char* LockModeToString(LockMode mode) {
  switch (mode) {
    case LockMode::kIntentionShared: return "IS";
    case LockMode::kIntentionExclusive: return "IX";
    case LockMode::kShared: return "S";
    case LockMode::kExclusive: return "X";
  }
  return "?";
}

bool LockManager::Compatible(LockMode a, LockMode b) {
  // Standard multi-granularity compatibility matrix.
  switch (a) {
    case LockMode::kIntentionShared:
      return b != LockMode::kExclusive;
    case LockMode::kIntentionExclusive:
      return b == LockMode::kIntentionShared ||
             b == LockMode::kIntentionExclusive;
    case LockMode::kShared:
      return b == LockMode::kIntentionShared || b == LockMode::kShared;
    case LockMode::kExclusive:
      return false;
  }
  return false;
}

bool LockManager::Covers(LockMode held, LockMode wanted) {
  if (held == wanted) return true;
  switch (wanted) {
    case LockMode::kIntentionShared:
      return true;  // any lock implies IS access
    case LockMode::kIntentionExclusive:
      return held == LockMode::kExclusive;
    case LockMode::kShared:
      return held == LockMode::kExclusive;
    case LockMode::kExclusive:
      return false;
  }
  return false;
}

bool LockManager::CanGrantLocked(Entry& e, LockOwnerId owner, LockMode mode) {
  for (const auto& [holder, held] : e.holders) {
    if (holder == owner) continue;  // self-conflict never blocks (upgrade)
    if (!Compatible(held, mode)) return false;
  }
  return true;
}

Status LockManager::Acquire(LockKey key, LockOwnerId owner, LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Status::Unavailable("lock manager shut down");

  auto& entry_ptr = table_[key];
  if (!entry_ptr) entry_ptr = std::make_unique<Entry>();
  Entry& e = *entry_ptr;

  auto held_it = e.holders.find(owner);
  const bool upgrade = held_it != e.holders.end();
  if (upgrade && Covers(held_it->second, mode)) return Status::OK();

  // Upgrades bypass the FIFO queue: the holder already owns a lock, and
  // queueing behind strangers that conflict with it would self-deadlock.
  if (!upgrade) e.waiters.emplace_back(owner, mode);

  const auto deadline = std::chrono::steady_clock::now() + default_timeout();
  auto can_proceed = [&] {
    if (shutdown_) return true;
    if (!CanGrantLocked(e, owner, mode)) return false;
    if (upgrade) return true;
    // FIFO among waiters: only the queue head (or a waiter compatible with
    // everything ahead of it) may be granted, preventing writer starvation.
    for (const auto& [w_owner, w_mode] : e.waiters) {
      if (w_owner == owner && w_mode == mode) return true;
      if (!Compatible(w_mode, mode)) return false;
    }
    return true;
  };

  bool ok = true;
  if (!can_proceed()) {
    // A lock wait is a blocking section on the shared runtime: the holder
    // that will release us may be queued behind us on the pool.
    runtime::ScopedBlocking block;
    while (!can_proceed()) {
      if (e.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          !can_proceed()) {
        ok = false;
        break;
      }
    }
  }

  if (!upgrade) {
    auto it = std::find(e.waiters.begin(), e.waiters.end(),
                        std::make_pair(owner, mode));
    if (it != e.waiters.end()) e.waiters.erase(it);
  }
  if (shutdown_) {
    e.cv.notify_all();
    return Status::Unavailable("lock manager shut down");
  }
  if (!ok) {
    e.cv.notify_all();  // our departure may unblock others
    return Status::TimedOut(
        "lock wait timeout (possible deadlock) on " +
        std::string(LockModeToString(mode)) + " " +
        (key.kind == 0 ? "page " : "table ") + std::to_string(key.a) +
        " held by " + [&] {
          std::string h;
          for (const auto& [o, m] : e.holders) {
            h += std::to_string(o) + ":" + LockModeToString(m) + " ";
          }
          return h;
        }());
  }

  // Record the strongest mode held.
  LockMode newly_held = mode;
  if (upgrade && Covers(held_it->second, mode)) newly_held = held_it->second;
  e.holders[owner] = newly_held;
  if (!upgrade) owned_[owner].push_back(key);
  acquires_.fetch_add(1, std::memory_order_relaxed);
  obs::Count(site_id_, obs::CounterId::kLockAcquires);
  e.cv.notify_all();
  return Status::OK();
}

Status LockManager::AcquirePageLock(LockOwnerId owner, PageId page,
                                    LockMode mode) {
  return Acquire(LockKey{0, (uint64_t{page.file_id} << 32) | page.page_no, 0},
                 owner, mode);
}

Status LockManager::AcquireTableLock(LockOwnerId owner, ObjectId object,
                                     LockMode mode) {
  return Acquire(LockKey{1, object, 0}, owner, mode);
}

bool LockManager::HasPageAccess(LockOwnerId owner, PageId page,
                                LockMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  LockKey key{0, (uint64_t{page.file_id} << 32) | page.page_no, 0};
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  auto h = it->second->holders.find(owner);
  return h != it->second->holders.end() && Covers(h->second, mode);
}

void LockManager::ReleaseAll(LockOwnerId owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owned_.find(owner);
  if (it == owned_.end()) return;
  for (const LockKey& key : it->second) {
    auto e_it = table_.find(key);
    if (e_it == table_.end()) continue;
    e_it->second->holders.erase(owner);
    e_it->second->cv.notify_all();
  }
  owned_.erase(it);
}

void LockManager::ReleaseTableLock(LockOwnerId owner, ObjectId object) {
  std::lock_guard<std::mutex> lock(mu_);
  LockKey key{1, object, 0};
  auto e_it = table_.find(key);
  if (e_it == table_.end()) return;
  e_it->second->holders.erase(owner);
  e_it->second->cv.notify_all();
  auto o_it = owned_.find(owner);
  if (o_it != owned_.end()) {
    auto& keys = o_it->second;
    keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
  }
}

void LockManager::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  for (auto& [key, entry] : table_) entry->cv.notify_all();
}

void LockManager::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = false;
  table_.clear();
  owned_.clear();
}

size_t LockManager::NumLockedResources() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, entry] : table_) {
    if (!entry->holders.empty()) ++n;
  }
  return n;
}

}  // namespace harbor
