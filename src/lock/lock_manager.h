#ifndef HARBOR_LOCK_LOCK_MANAGER_H_
#define HARBOR_LOCK_LOCK_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace harbor {

/// Lock modes. Pages use kShared/kExclusive; table-granularity locks
/// additionally use intention modes so that a recovering site's table-level
/// read lock (§5.4.1) conflicts with ongoing update transactions' page-level
/// writes (which announce themselves with kIntentionExclusive at the table).
enum class LockMode : uint8_t {
  kIntentionShared = 0,
  kIntentionExclusive = 1,
  kShared = 2,
  kExclusive = 3,
};

const char* LockModeToString(LockMode mode);

/// Identifies a lock holder: a local transaction (its TxnId) or a remote
/// recovering site (a synthesized id, see MakeRecoveryOwner). Remote owners
/// can have all their locks force-released when their site is detected to
/// have crashed (§5.5.1).
using LockOwnerId = uint64_t;

/// Owner id for the recovery process of site `site`; distinct from any TxnId
/// (transaction ids are allocated well below 2^56).
inline LockOwnerId MakeRecoveryOwner(SiteId site) {
  return (uint64_t{1} << 56) | site;
}

/// \brief Strict two-phase locking for one site (§6.1.2).
///
/// Supports page-granularity locks for normal transaction processing and
/// table-granularity locks for recovery, with upgrade (S -> X on the same
/// page while scanning for a free slot, §6.1.3) and timeout-based deadlock
/// detection: a timed-out acquire returns kTimedOut and the caller aborts
/// the transaction.
class LockManager {
 public:
  explicit LockManager(std::chrono::milliseconds default_timeout =
                           std::chrono::milliseconds(500),
                       SiteId site_id = kInvalidSiteId)
      : default_timeout_ms_(default_timeout.count()), site_id_(site_id) {}

  /// Acquires (or upgrades to) `mode` on a page; blocks until granted,
  /// timeout (=> deadlock victim), or site shutdown.
  Status AcquirePageLock(LockOwnerId owner, PageId page, LockMode mode);

  /// Acquires `mode` on a whole table object.
  Status AcquireTableLock(LockOwnerId owner, ObjectId object, LockMode mode);

  /// True if `owner` already holds a lock with at least `mode` strength on
  /// the page.
  bool HasPageAccess(LockOwnerId owner, PageId page, LockMode mode);

  /// Releases every lock held by `owner` (end of transaction, §6.1.2, or a
  /// crashed remote owner's locks being overridden, §5.5.1).
  void ReleaseAll(LockOwnerId owner);

  /// Releases one table lock.
  void ReleaseTableLock(LockOwnerId owner, ObjectId object);

  /// Fails all current and future waiters with kUnavailable; used when the
  /// site crashes so no handler thread stays blocked.
  void Shutdown();

  /// Re-enables lock acquisition (fresh runtime after restart uses a new
  /// LockManager, but tests reuse instances).
  void Reset();

  /// Number of distinct locked resources (for tests).
  size_t NumLockedResources();

  /// Total granted acquisitions (page + table, including upgrades) over the
  /// manager's lifetime. The snapshot read path's "zero lock acquisitions"
  /// claim is asserted against deltas of this counter; it is always on so
  /// the bypass is checkable without an installed Observer.
  int64_t acquires() const {
    return acquires_.load(std::memory_order_relaxed);
  }

  /// Atomic: tests tighten the timeout while waiter threads are computing
  /// deadlines from it (a plain member here is a TSan-visible data race).
  void set_default_timeout(std::chrono::milliseconds t) {
    default_timeout_ms_.store(t.count(), std::memory_order_relaxed);
  }
  std::chrono::milliseconds default_timeout() const {
    return std::chrono::milliseconds(
        default_timeout_ms_.load(std::memory_order_relaxed));
  }

 private:
  struct LockKey {
    uint8_t kind;  // 0 = page, 1 = table
    uint64_t a;
    uint64_t b;
    bool operator==(const LockKey&) const = default;
  };
  struct LockKeyHash {
    size_t operator()(const LockKey& k) const noexcept {
      return std::hash<uint64_t>()(k.a * 1000003 + k.b * 31 + k.kind);
    }
  };
  struct Entry {
    // owner -> strongest mode held
    std::unordered_map<LockOwnerId, LockMode> holders;
    std::deque<std::pair<LockOwnerId, LockMode>> waiters;
    std::condition_variable cv;
  };

  static bool Compatible(LockMode a, LockMode b);
  static bool Covers(LockMode held, LockMode wanted);

  Status Acquire(LockKey key, LockOwnerId owner, LockMode mode);
  bool CanGrantLocked(Entry& e, LockOwnerId owner, LockMode mode);

  std::atomic<int64_t> default_timeout_ms_;
  const SiteId site_id_;
  std::atomic<int64_t> acquires_{0};
  std::mutex mu_;
  bool shutdown_ = false;
  std::unordered_map<LockKey, std::unique_ptr<Entry>, LockKeyHash> table_;
  std::unordered_map<LockOwnerId, std::vector<LockKey>> owned_;
};

}  // namespace harbor

#endif  // HARBOR_LOCK_LOCK_MANAGER_H_
