// Soak: the open-loop statement-layer workload driver end to end, with the
// post-run differential check as the pass/fail bar.
//
// A steady-state run is the clean reference; a second run forces one
// mid-soak crash+recovery cycle with no chaos;
// four more runs layer distinct seeded chaos schedules (worker crashes in
// the commit pipeline, a coordinator crash, distribution drops, message
// delay/duplication storms) on top of the same population. Every run must
// settle into a state the serial reference model accepts — no lost or
// duplicated committed rows — and reports open-loop p50/p99/p999 latency
// per operation kind (measured from the scheduled arrival, so queueing
// counts). Results land in BENCH_workload_soak.json.
//
// Env knobs (all optional):
//   HARBOR_SOAK_DURATION_MS  arrival horizon per run (default 3000)
//   HARBOR_SOAK_SEED         base seed (default HARBOR_SEED / 42)
//   HARBOR_SOAK_OUT          output JSON path (default BENCH_workload_soak.json)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "workload/driver.h"

namespace harbor::bench {
namespace {

using workload::OpKind;
using workload::SoakOptions;
using workload::SoakReport;
using workload::WorkloadDriver;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoll(v, nullptr, 10) : fallback;
}

struct Case {
  const char* name;
  int recoveries;     // forced mid-soak crash+recovery cycles
  const char* chaos;  // "" = none
};

SoakOptions MakeOptions(uint64_t seed, int64_t duration_ms, int recoveries,
                        const char* chaos) {
  SoakOptions opt;
  opt.seed = seed;
  // Rates chosen to keep the open-loop schedule inside the cluster's
  // service capacity; oversaturating an open-loop harness just measures
  // queue growth. The binding constraint is single-table DML: every
  // insert X-locks the open segment's tail page until commit (strict
  // 2PL), so the 8 trickle sessions convoy on that page and sustain only
  // a few dozen DML/s total. One issuing thread per session so a trickle
  // session stuck in a lock convoy never queues another session's scans
  // behind it.
  opt.mixes = {workload::TrickleUpdateMix(8, 4.0),
               workload::ScanHeavyMix(4, 12.0)};
  opt.duration_ms = duration_ms;
  opt.threads = 12;
  opt.preload_rows = 256;
  opt.forced_recoveries = recoveries;
  opt.chaos = chaos;
  return opt;
}

void PrintRow(const SoakReport& r) {
  for (size_t k = 0; k < workload::kOpKindCount; ++k) {
    const workload::OpStats& s = r.ops[k];
    if (s.attempts == 0) continue;
    std::printf("  %-16s %7lld ops  p50 %8.3f ms  p99 %8.3f ms  "
                "p999 %8.3f ms  (aborted %lld, unknown %lld, stalled %lld)\n",
                workload::OpKindName(static_cast<OpKind>(k)),
                static_cast<long long>(s.attempts), s.p50_ns / 1e6,
                s.p99_ns / 1e6, s.p999_ns / 1e6,
                static_cast<long long>(s.aborted),
                static_cast<long long>(s.unknown),
                static_cast<long long>(s.stalled));
  }
  std::printf("  recoveries %lld (max %.1f ms), faults fired %lld, "
              "rows checked %lld (+%lld uncertain), diff %s\n",
              static_cast<long long>(r.recoveries), r.recovery_max_ns / 1e6,
              static_cast<long long>(r.faults_fired),
              static_cast<long long>(r.rows_checked),
              static_cast<long long>(r.rows_uncertain),
              r.diff_ok ? "OK" : "FAILED");
}

void Run() {
  const int64_t duration_ms = EnvInt("HARBOR_SOAK_DURATION_MS", 3000);
  const uint64_t seed = static_cast<uint64_t>(
      EnvInt("HARBOR_SOAK_SEED", static_cast<int64_t>(Random::GlobalSeed())));
  const char* out_env = std::getenv("HARBOR_SOAK_OUT");
  const std::string out_path = out_env ? out_env : "BENCH_workload_soak.json";

  // steady_state is the clean reference (no recovery, no chaos);
  // forced_recovery isolates the cost of one mid-soak crash+recovery
  // cycle; the last four are the schedules the soak-smoke test pins.
  const std::vector<Case> cases = {
      {"steady_state", 0, ""},
      {"forced_recovery", 1, ""},
      {"worker_commit_crash", 1,
       "seed=11;point=worker.commit,site=1,hit=5,action=crash"},
      {"coordinator_crash", 1,
       "seed=12;point=coordinator.after_prepare,site=0,hit=8,action=crash"},
      {"distribution_drops", 1,
       "seed=13;link=0->*,type=1,action=drop,p=0.2,max=3;"
       "point=worker.prepare,site=2,hit=6,action=delay,ms=3"},
      {"apply_crash_with_delays", 1,
       "seed=14;point=worker.commit.after_apply,site=3,hit=10,action=crash;"
       "link=*->*,action=delay,p=0.15,ms=2,max=6"},
  };

  std::printf("Workload soak — open-loop mixed population, chaos under "
              "load, differential check\n");
  std::printf("(12 trickle + scan-heavy sessions, %lld ms horizon, "
              "seed %llu)\n\n",
              static_cast<long long>(duration_ms),
              static_cast<unsigned long long>(seed));

  std::string grid;
  for (size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    std::printf("%s%s%s\n", c.name, *c.chaos ? "  " : "", c.chaos);
    WorkloadDriver driver(
        MakeOptions(seed + i, duration_ms, c.recoveries, c.chaos));
    auto report = driver.Run();
    HARBOR_CHECK_OK(report.status());
    PrintRow(*report);
    // The acceptance bar: the surviving state matches the serial reference
    // model under every schedule. Abort the bench on any mismatch.
    HARBOR_CHECK(report->diff_ok);
    if (i > 0) grid.append(",\n    ");
    grid.append("\"").append(c.name).append("\": ").append(report->ToJson());
    std::printf("\n");
  }

  std::string json =
      "{\n"
      "  \"benchmark\": \"bench_workload_soak\",\n"
      "  \"description\": \"Open-loop soak through the statement front-end: "
      "12 sessions (8 trickle-DML at 4 ops/s, 4 scan-heavy at 12 ops/s) "
      "with seeded exponential arrivals over a " +
      std::to_string(duration_ms) +
      " ms horizon, then settle + differential check against each session's "
      "serial reference model. Latencies are open-loop (from the scheduled "
      "arrival, so queueing counts). steady_state is the clean reference; "
      "forced_recovery adds one mid-soak worker crash+recovery cycle, and "
      "the remaining four layer the pinned chaos schedules from "
      "workload_soak_test on top of that cycle. Lock-free snapshot scans "
      "never stall (the SLO bar is max(10 x p99, 100 ms)); DML p99 spikes "
      "to the 100 ms lock timeout only in schedules where a worker crashes "
      "holding page locks, and a commit interrupted by the coordinator "
      "crash schedule surfaces as aborted/unknown, never as silent loss — "
      "every run's differential check must pass or the bench aborts.\",\n"
      "  \"environment\": {\n"
      "    \"seed\": " + std::to_string(seed) + ",\n"
      "    \"duration_ms\": " + std::to_string(duration_ms) + ",\n"
      "    \"build\": \"RelWithDebInfo, 3 workers, kOptimized3PC, "
      "SimConfig::Zero (no modeled disk/net: measures protocol + "
      "scheduling latency, not I/O)\"\n"
      "  },\n"
      "  \"grid\": {\n    " + grid + "\n  }\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  HARBOR_CHECK(f != nullptr);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (all %zu differential checks passed)\n",
              out_path.c_str(), cases.size());
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
