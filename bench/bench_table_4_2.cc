// Table 4.2: overhead of the four commit protocols, measured on a live
// 1-coordinator / 2-worker cluster by counting actual protocol messages and
// forced log writes for a single-insert transaction (§4.3.4).
//
// Expected (per the paper):
//   protocol          msgs/worker   coord forces   worker forces
//   traditional 2PC        4             1               2
//   optimized 2PC          4             1               0
//   canonical 3PC          6             0               3
//   optimized 3PC          6             0               0

#include <cstdio>

#include "bench/bench_util.h"
#include "obs/observer.h"

namespace harbor::bench {
namespace {

void Run() {
  Banner("Table 4.2 — messages and forced writes per commit protocol",
         "§4.3.4, Table 4.2");

  // Per-site metrics for the whole run; the obs wal.forces counters must
  // report the same forces the table rows are computed from.
  obs::Observer observer;
  observer.Install();

  struct Expected {
    CommitProtocol protocol;
    int msgs, coord_fw, worker_fw;
  };
  const std::vector<Expected> rows = {
      {CommitProtocol::kTraditional2PC, 4, 1, 2},
      {CommitProtocol::kOptimized2PC, 4, 1, 0},
      {CommitProtocol::kCanonical3PC, 6, 0, 3},
      {CommitProtocol::kOptimized3PC, 6, 0, 0},
      // Extension: the logless one-phase commit of §4.3.2 (valid here
      // because workers verify constraints per operation).
      {CommitProtocol::kOptimized1PC, 2, 0, 0},
  };

  std::printf("%-18s %14s %14s %14s   (expected in parens)\n", "protocol",
              "msgs/worker", "coord forces", "worker forces");
  bool all_match = true;
  int64_t log_forces_total = 0;  // per LogManager counters, whole run
  for (const Expected& e : rows) {
    ClusterOptions opt;
    opt.num_workers = 2;
    opt.protocol = e.protocol;
    opt.sim = SimConfig::Zero();  // counting, not timing
    auto cluster_r = Cluster::Create(opt);
    HARBOR_CHECK_OK(cluster_r.status());
    auto cluster = std::move(cluster_r).value();
    TableId table = MakeEvalTable(cluster.get(), "t", 64);
    Coordinator* coord = cluster->coordinator();

    auto txn = coord->Begin();
    HARBOR_CHECK_OK(txn.status());
    HARBOR_CHECK_OK(coord->Insert(*txn, table, EvalRow(1)));

    // Snapshot counters after the update phase: Table 4.2 counts only the
    // commit protocol itself.
    const int64_t msgs0 = cluster->network()->num_messages();
    int64_t coord_fw0 = coord->log() ? coord->log()->num_forces() : 0;
    int64_t worker_fw0 = 0;
    for (int w = 0; w < 2; ++w) {
      if (cluster->worker(w)->log() != nullptr) {
        worker_fw0 += cluster->worker(w)->log()->num_forces();
      }
    }

    HARBOR_CHECK_OK(coord->Commit(*txn));

    const int64_t msgs =
        (cluster->network()->num_messages() - msgs0) / 2;  // per worker
    const int64_t coord_fw =
        (coord->log() ? coord->log()->num_forces() : 0) - coord_fw0;
    int64_t worker_fw = 0;
    for (int w = 0; w < 2; ++w) {
      if (cluster->worker(w)->log() != nullptr) {
        worker_fw += cluster->worker(w)->log()->num_forces();
      }
    }
    worker_fw = (worker_fw - worker_fw0) / 2;  // per worker

    const bool match = msgs == e.msgs && coord_fw == e.coord_fw &&
                       worker_fw == e.worker_fw;
    all_match &= match;
    std::printf("%-18s %9lld (%d) %9lld (%d) %9lld (%d)   %s\n",
                CommitProtocolToString(e.protocol), (long long)msgs, e.msgs,
                (long long)coord_fw, e.coord_fw, (long long)worker_fw,
                e.worker_fw, match ? "MATCH" : "MISMATCH");

    if (coord->log() != nullptr) log_forces_total += coord->log()->num_forces();
    for (int w = 0; w < 2; ++w) {
      if (cluster->worker(w)->log() != nullptr) {
        log_forces_total += cluster->worker(w)->log()->num_forces();
      }
    }
  }
  std::printf("\n%s\n", all_match ? "All rows match Table 4.2."
                                  : "Some rows deviate from Table 4.2!");

  // The metrics layer and the logs' own counters are two independent views
  // of the same events; they must agree exactly.
  int64_t obs_forces_total = 0;
  for (SiteId site : observer.Sites()) {
    obs_forces_total +=
        observer.MetricsFor(site).counter(obs::CounterId::kWalForces).value();
  }
  std::printf("\nwal.forces (obs) = %lld, LogManager num_forces = %lld  %s\n",
              (long long)obs_forces_total, (long long)log_forces_total,
              obs_forces_total == log_forces_total ? "MATCH" : "MISMATCH");

  std::printf("\nPer-site metrics:\n%s\n", observer.AllMetricsJson().c_str());
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
