// Figure 6-7: transaction processing performance during site failure and
// recovery (§6.5).
//
// A single client stream continuously inserts into a table replicated on
// two workers. Partway in, one worker crashes; later, online recovery
// brings it back while inserts keep flowing.
//
// Expected shape: a dip at the crash (one aborted transaction, failure
// detection), then *slightly higher* steady throughput while down (one
// fewer commit participant), no effect from Phase 1 (local), modest
// degradation during Phase 2's historical queries, a short deeper dip when
// Phase 3 takes its table read lock, then a return to the original level.

#include <cstdio>

#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "core/recovery_manager.h"

namespace harbor::bench {
namespace {

constexpr uint32_t kSegmentPages = 32;
constexpr size_t kPreloadTuples = 40 * kSegmentPages * 50;

// Timeline in 100 ms buckets (the paper plots 1 s buckets at full scale).
constexpr int64_t kBucketMs = 100;
constexpr int kTotalBuckets = 120;
constexpr int kCrashBucket = 30;
constexpr int kRecoverBucket = 60;

void Run() {
  Banner("Figure 6-7 — throughput timeline across failure and recovery",
         "§6.5, Figure 6-7");

  auto cluster = MakePaperCluster(CommitProtocol::kOptimized3PC, 2,
                                  /*group_commit=*/true,
                                  /*checkpoint_period_ms=*/100);
  TableId table = MakeEvalTable(cluster.get(), "t", kSegmentPages);
  Preload(cluster.get(), table, kPreloadTuples);
  HARBOR_CHECK_OK(cluster->CheckpointAll());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> committed{0};
  // As in the paper: a single client stream, no concurrency (§6.5).
  std::vector<std::thread> writers;
  writers.emplace_back([&] {
    int32_t seq = 5000000;
    while (!stop.load(std::memory_order_relaxed)) {
      if (cluster->coordinator()->InsertTxn(table, EvalRow(seq++)).ok()) {
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::thread recovery_thread;
  double phase_marks[5] = {0, 0, 0, 0, 0};
  std::printf("%8s %10s   event\n", "t(s)", "tps");
  int64_t last = 0;
  Stopwatch total;
  for (int bucket = 0; bucket < kTotalBuckets; ++bucket) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kBucketMs));
    int64_t now_count = committed.load();
    double tps = static_cast<double>(now_count - last) * 1000.0 / kBucketMs;
    last = now_count;
    const char* event = "";
    if (bucket == kCrashBucket) {
      cluster->CrashWorker(1);
      event = "<- worker crash";
    } else if (bucket == kRecoverBucket) {
      recovery_thread = std::thread([&] {
        Stopwatch watch;
        auto stats = cluster->RecoverWorker(1);
        HARBOR_CHECK_OK(stats.status());
        phase_marks[0] = stats->phase1_seconds;
        phase_marks[1] = stats->phase2_seconds;
        phase_marks[2] = stats->phase3_seconds;
        phase_marks[3] = stats->offline_seconds;
        phase_marks[4] = watch.ElapsedSeconds();
      });
      event = "<- recovery starts (phases 1-3 online)";
    }
    std::printf("%8.1f %10.0f   %s\n", total.ElapsedSeconds(), tps, event);
    std::fflush(stdout);
  }
  stop = true;
  for (auto& w : writers) w.join();
  if (recovery_thread.joinable()) recovery_thread.join();

  std::printf("\nrecovery phases: phase1 %.3f s, phase2 %.3f s, phase3 %.3f "
              "s, offline(1+2) %.3f s, total %.3f s\n",
              phase_marks[0], phase_marks[1], phase_marks[2], phase_marks[3],
              phase_marks[4]);
  std::printf("(paper: dip at crash; slightly higher tps while down; small "
              "dip in phase 2; short deeper dip at phase 3's read lock; "
              "then back to steady state)\n");
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
