// Figure 6-3: transaction processing performance with simulated CPU work at
// the worker sites, for 1, 5, and 10 concurrent transactions (§6.3.2).
//
// Expected shape: absolute throughput falls as work grows; the *relative*
// gaps between the protocols shrink both with increasing CPU work and with
// increasing concurrency (CPU work cannot be overlapped across transactions
// on a single-processor site, unlike disk and network).

#include <cstdio>

#include "bench/bench_util.h"

namespace harbor::bench {
namespace {

void Run() {
  Banner("Figure 6-3 — throughput vs simulated CPU work", "§6.3.2");

  const std::vector<std::pair<const char*, CommitProtocol>> protocols = {
      {"optimized-3PC", CommitProtocol::kOptimized3PC},
      {"optimized-2PC", CommitProtocol::kOptimized2PC},
      {"traditional-2PC", CommitProtocol::kTraditional2PC},
      {"canonical-3PC", CommitProtocol::kCanonical3PC},
  };
  // Millions of simulated cycles per transaction (paper sweeps 0..5M).
  const std::vector<int64_t> work_mcycles = {0, 1, 2, 5};
  const std::vector<int> concurrency = {1, 5, 10};

  // ratios[c] = opt3PC tps / trad2PC tps at each work level.
  for (int streams : concurrency) {
    std::printf("\n--- %d concurrent transaction%s ---\n", streams,
                streams == 1 ? "" : "s");
    std::printf("%-18s", "protocol\\Mcycles");
    for (int64_t w : work_mcycles) std::printf("%10lld", (long long)w);
    std::printf("   (tps)\n");
    std::vector<std::vector<double>> grid;
    for (const auto& [name, protocol] : protocols) {
      std::printf("%-18s", name);
      std::fflush(stdout);
      std::vector<double> row;
      for (int64_t mcycles : work_mcycles) {
        auto cluster = MakePaperCluster(protocol, 2);
        std::vector<TableId> tables;
        for (int t = 0; t < streams; ++t) {
          tables.push_back(
              MakeEvalTable(cluster.get(), "t" + std::to_string(t), 64));
        }
        ThroughputResult r = MeasureInsertThroughput(
            cluster.get(), tables, streams, 0.9, mcycles * 1'000'000);
        row.push_back(r.tps);
        std::printf("%10.0f", r.tps);
        std::fflush(stdout);
      }
      grid.push_back(std::move(row));
      std::printf("\n");
    }
    std::printf("opt-3PC/trad-2PC ratio: %.1fx at 0 cycles -> %.1fx at %lldM "
                "cycles (paper: gaps shrink with work)\n",
                grid[0][0] / grid[2][0], grid[0].back() / grid[2].back(),
                (long long)work_mcycles.back());
  }
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
