// Figure 6-6: decomposition of HARBOR's recovery time into its constituent
// parts, as a function of historical segments updated (§6.4.3):
//   Phase 1 (local restore), Phase 2 SELECT+UPDATE (deletion copy),
//   Phase 2 SELECT+INSERT (tuple copy), Phase 3 (locked catch-up).
//
// Expected shape: Phase 1 flat (last-segment scan); Phase 2 SELECT+UPDATE
// linear in updated historical segments; Phase 2 SELECT+INSERT roughly
// constant for a fixed transaction count; Phase 3 negligible when no
// transactions run during recovery.

#include <cstdio>

#include "bench/bench_recovery_util.h"
#include "exec/predicate.h"

namespace harbor::bench {
namespace {

constexpr uint32_t kSegmentPages = 64;
constexpr size_t kTuplesPerSegment = kSegmentPages * 50;
constexpr size_t kSegments = 24;
constexpr size_t kPreloadTuples = kSegments * kTuplesPerSegment;
constexpr size_t kTotalTxns = 2000;
constexpr size_t kUpdateTxns = 320;

void Run() {
  Banner("Figure 6-6 — decomposition of HARBOR recovery by phase",
         "§6.4.3, Figure 6-6");
  const std::vector<size_t> segments_updated = {0, 2, 4, 8, 16};

  std::printf("%10s %10s %14s %14s %10s %10s\n", "segments", "phase1(s)",
              "p2 SEL+UPD(s)", "p2 SEL+INS(s)", "phase3(s)", "total(s)");
  RecoveryScenario scenario{"HARBOR, 1 table", false, 1, false};
  for (size_t segs : segments_updated) {
    RecoveryRunResult r = RunRecoveryExperiment(
        scenario, kPreloadTuples, kSegmentPages,
        [segs](Cluster* cluster, const std::vector<TableId>& tables) {
          Coordinator* coord = cluster->coordinator();
          size_t updates = segs == 0 ? 0 : kUpdateTxns;
          for (size_t u = 0; u < updates; ++u) {
            size_t seg = u % segs;
            int32_t key = static_cast<int32_t>(
                seg * kTuplesPerSegment + (u / segs) % 500);
            auto txn = coord->Begin();
            HARBOR_CHECK_OK(txn.status());
            Predicate p;
            p.And("f0", CompareOp::kEq, Value(key));
            HARBOR_CHECK_OK(coord->Update(
                *txn, tables[0], p, {SetClause{"f1", Value(int32_t{-1})}}));
            HARBOR_CHECK_OK(coord->Commit(*txn));
          }
          RunInsertTxns(cluster, tables, kTotalTxns - updates);
        });
    const ObjectRecoveryStats& obj = r.stats.objects[0];
    std::printf("%10zu %10.3f %14.3f %14.3f %10.3f %10.3f\n", segs,
                obj.phase1_seconds, obj.phase2_delete_seconds,
                obj.phase2_insert_seconds, r.stats.phase3_seconds,
                r.recovery_seconds);
  }
  std::printf("\n(paper: phase 1 constant; SELECT+UPDATE linear in segments; "
              "SELECT+INSERT constant; phase 3 negligible)\n");
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
