// Figure 6-5: recovery performance as a function of the number of
// *historical segments* updated since the crash (§6.4.2).
//
// A fixed number of transactions runs after the checkpoint; a sweep controls
// how many distinct historical segments the update transactions touch.
//
// Expected shape: ARIES is flat (it scans the log tail, not the data);
// HARBOR grows linearly — it must scan every segment whose t_max_deletion
// moved past the checkpoint — and wins when few historical segments were
// updated (the characteristic warehouse regime).

#include <cstdio>

#include "bench/bench_recovery_util.h"
#include "exec/predicate.h"

namespace harbor::bench {
namespace {

constexpr uint32_t kSegmentPages = 16;  // 64 KB segments (scaled)
constexpr size_t kTuplesPerSegment = kSegmentPages * 50;
constexpr size_t kSegments = 40;
constexpr size_t kPreloadTuples = kSegments * kTuplesPerSegment;
constexpr size_t kTotalTxns = 2000;  // scaled from the paper's 20 K

// Updates `kTotalTxns` rows: the first portion targets rows spread over
// `historical_segments` distinct old segments (via the preloaded f0 value,
// which increases with load order), the rest are fresh inserts.
void RunWorkload(Cluster* cluster, const std::vector<TableId>& tables,
                 size_t historical_segments) {
  size_t updates = historical_segments == 0
                       ? 0
                       : std::min(kTotalTxns / 2,
                                  historical_segments * 40);
  Coordinator* coord = cluster->coordinator();
  for (size_t u = 0; u < updates; ++u) {
    // Pick a target row inside historical segment (u % historical_segments).
    size_t seg = u % historical_segments;
    int32_t key = static_cast<int32_t>(seg * kTuplesPerSegment +
                                       (u / historical_segments) % 500);
    TableId table = tables[u % tables.size()];
    auto txn = coord->Begin();
    HARBOR_CHECK_OK(txn.status());
    Predicate p;
    p.And("f0", CompareOp::kEq, Value(key));
    HARBOR_CHECK_OK(coord->Update(*txn, table, p,
                                  {SetClause{"f1", Value(int32_t{-1})}}));
    HARBOR_CHECK_OK(coord->Commit(*txn));
  }
  RunInsertTxns(cluster, tables, kTotalTxns - updates);
}

void Run() {
  Banner("Figure 6-5 — recovery time vs historical segments updated",
         "§6.4.2, Figure 6-5");
  const std::vector<size_t> segments_updated = {0, 2, 4, 8, 16};

  std::printf("%-28s", "scenario\\segments");
  for (size_t n : segments_updated) std::printf("%10zu", n);
  std::printf("   (recovery seconds, %zu txns)\n", kTotalTxns);

  std::vector<std::vector<double>> grid;
  for (const RecoveryScenario& scenario : PaperRecoveryScenarios()) {
    std::printf("%-28s", scenario.name);
    std::fflush(stdout);
    std::vector<double> row;
    for (size_t segs : segments_updated) {
      RecoveryRunResult r = RunRecoveryExperiment(
          scenario, kPreloadTuples, kSegmentPages,
          [segs](Cluster* cluster, const std::vector<TableId>& tables) {
            RunWorkload(cluster, tables, segs);
          });
      row.push_back(r.recovery_seconds);
      std::printf("%10.3f", r.recovery_seconds);
      std::fflush(stdout);
    }
    grid.push_back(std::move(row));
    std::printf("\n");
  }

  std::printf("\nARIES stays ~flat: %.3f -> %.3f s; HARBOR (1 table) grows: "
              "%.3f -> %.3f s (paper: linear in updated segments)\n",
              grid[0][0], grid[0].back(), grid[3][0], grid[3].back());
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
