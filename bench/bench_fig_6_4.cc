// Figure 6-4: recovery performance as a function of the number of insert
// transactions executed since the last checkpoint / crash (§6.4.1).
//
// Four scenarios: ARIES from the log (1 table), HARBOR from a replica
// (1 table), and HARBOR recovering two tables serially vs in parallel.
//
// Expected shape: ARIES is cheapest at very small N but its per-transaction
// slope is several times steeper than HARBOR's (log processing with random
// page I/O vs streaming committed tuples from a replica), so the lines
// cross; parallel 2-table recovery beats serial, with the gap growing in N.

#include <cstdio>

#include "bench/bench_recovery_util.h"
#include "obs/observer.h"

namespace harbor::bench {
namespace {

// Scaled stand-in for the paper's 1 GB preloaded tables: the preload size
// only sets the amount of *historical* (checkpointed) data, which recovery
// prunes away via the segment directory; 10 segments keep the setup quick.
constexpr uint32_t kSegmentPages = 32;
constexpr size_t kPreloadTuples = 10 * kSegmentPages * 50;  // 16 K rows

void Run() {
  Banner("Figure 6-4 — recovery time vs insert transactions since crash",
         "§6.4.1, Figure 6-4");

  // Collect per-site metrics across the whole grid; the recovering site's
  // phase timers and tuple counts are printed at the end.
  obs::Observer observer;
  observer.Install();

  const std::vector<size_t> txn_counts = {2, 2500, 5000, 10000, 20000};

  std::printf("%-28s", "scenario\\inserts");
  for (size_t n : txn_counts) std::printf("%10zu", n);
  std::printf("   (recovery seconds)\n");

  std::vector<std::vector<double>> grid;
  for (const RecoveryScenario& scenario : PaperRecoveryScenarios()) {
    std::printf("%-28s", scenario.name);
    std::fflush(stdout);
    std::vector<double> row;
    for (size_t n : txn_counts) {
      RecoveryRunResult r = RunRecoveryExperiment(
          scenario, kPreloadTuples, kSegmentPages,
          [n](Cluster* cluster, const std::vector<TableId>& tables) {
            RunInsertTxns(cluster, tables, n);
          });
      row.push_back(r.recovery_seconds);
      std::printf("%10.3f", r.recovery_seconds);
      std::fflush(stdout);
    }
    grid.push_back(std::move(row));
    std::printf("\n");
  }

  // Slopes (seconds per additional insert transaction) over the linear tail.
  auto slope = [&](const std::vector<double>& row) {
    return (row.back() - row[1]) /
           static_cast<double>(txn_counts.back() - txn_counts[1]);
  };
  const double aries_slope = slope(grid[0]);
  const double harbor_slope = slope(grid[3]);
  std::printf("\nARIES slope %.1f us/txn vs HARBOR slope %.1f us/txn -> "
              "ARIES degrades %.1fx faster (paper: ~3.3x)\n",
              aries_slope * 1e6, harbor_slope * 1e6,
              aries_slope / harbor_slope);
  std::printf("parallel vs serial 2-table gap at N=%zu: %.3f s vs %.3f s "
              "(paper: parallel wins, gap grows with N)\n",
              txn_counts.back(), grid[2].back(), grid[1].back());

  // Worker 2 is the crashed-and-recovered site in every HARBOR scenario
  // (see RunRecoveryExperiment); its recovery.phase{1,2,3}_ns histograms
  // aggregate all grid cells above.
  std::printf("\nRecovering-site metrics (site %u, all runs):\n%s\n",
              Cluster::WorkerSite(2),
              observer.MetricsJson(Cluster::WorkerSite(2)).c_str());
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
