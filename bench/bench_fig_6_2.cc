// Figure 6-2: transaction processing performance of different commit
// protocols, as a function of the number of concurrent transactions.
//
// Six variants, exactly as in §6.3.1:
//   optimized 3PC (no logging), optimized 2PC (no worker logging),
//   canonical 3PC (worker logging, no coordinator log), traditional 2PC,
//   2PC without group commit, and 2PC without replication (1 worker).
//
// Expected shape: opt 3PC ~= opt 2PC > canonical 3PC >~ traditional 2PC >>
// 2PC w/o group commit (flat); single-stream latency of opt 3PC is roughly
// 10x better than traditional 2PC's.

#include <cstdio>

#include "bench/bench_util.h"

namespace harbor::bench {
namespace {

struct Variant {
  const char* name;
  CommitProtocol protocol;
  bool group_commit;
  int workers;
};

void Run() {
  Banner("Figure 6-2 — commit protocol throughput vs concurrency",
         "§6.3.1, Figure 6-2");

  const std::vector<Variant> variants = {
      {"optimized-3PC", CommitProtocol::kOptimized3PC, true, 2},
      {"optimized-2PC", CommitProtocol::kOptimized2PC, true, 2},
      {"canonical-3PC", CommitProtocol::kCanonical3PC, true, 2},
      {"traditional-2PC", CommitProtocol::kTraditional2PC, true, 2},
      {"2PC-no-group-commit", CommitProtocol::kTraditional2PC, false, 2},
      {"2PC-no-replication", CommitProtocol::kTraditional2PC, true, 1},
  };
  const std::vector<int> concurrency = {1, 2, 4, 8, 12, 16, 20};

  std::printf("%-22s", "protocol\\streams");
  for (int c : concurrency) std::printf("%8d", c);
  std::printf("   (tps)\n");

  std::vector<std::vector<double>> table;
  for (const Variant& v : variants) {
    std::printf("%-22s", v.name);
    std::fflush(stdout);
    std::vector<double> row;
    for (int streams : concurrency) {
      auto cluster = MakePaperCluster(v.protocol, v.workers, v.group_commit);
      std::vector<TableId> tables;
      for (int t = 0; t < streams; ++t) {
        tables.push_back(MakeEvalTable(cluster.get(),
                                       "t" + std::to_string(t), 64));
      }
      ThroughputResult r = MeasureInsertThroughput(cluster.get(), tables,
                                                   streams, 1.0);
      row.push_back(r.tps);
      std::printf("%8.0f", r.tps);
      std::fflush(stdout);
    }
    table.push_back(std::move(row));
    std::printf("\n");
  }

  // Headline shape checks (paper: single-stream opt3PC ~10x traditional
  // 2PC; concurrency narrows the gap via group commit).
  const double ratio1 = table[0][0] / table[3][0];
  const double ratio20 = table[0].back() / table[3].back();
  std::printf("\nopt-3PC / traditional-2PC throughput ratio: %.1fx at 1 "
              "stream (paper ~10x), %.1fx at 20 streams (paper ~2-3x)\n",
              ratio1, ratio20);
  std::printf("2PC w/o group commit stays flat: %.0f -> %.0f tps (paper "
              "58-93 tps at 1/1 scale)\n",
              table[4][0], table[4].back());
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
