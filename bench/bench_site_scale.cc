// Site scale-out: one process hosting 8 / 32 / 128 worker sites on the
// shared task-scheduler runtime.
//
// Before the shared runtime every site carried its own dispatch threads
// (worker_server_threads per endpoint) plus per-subsystem timers, so a
// 128-site cluster meant a thousand-plus parked OS threads before the
// first transaction. Now dispatch strands, checkpoint/epoch timers,
// consensus rounds and recovery fan-out all multiplex onto one fixed
// worker pool, and the process thread count stays flat as sites grow.
//
// Per site count this bench records:
//   - process thread count after cluster bring-up (the headline number),
//   - conflict-free insert throughput (8 streams against rendezvous-placed
//     replication_factor-2 tables),
//   - HARBOR three-phase recovery of a crashed site while the rest of the
//     cluster stays up: offline time (phases 1+2) and total time for a
//     fixed-size probe table, so the recovery number is comparable across
//     site counts and isolates per-site runtime overhead,
//   - scheduler introspection (tasks run, spare threads spawned).
//
// Results land in BENCH_site_scale.json.
//
// Env knobs (all optional):
//   HARBOR_SITE_SCALE_SITES        comma list of site counts (default 8,32,128)
//   HARBOR_SITE_SCALE_DURATION_MS  throughput measure window (default 500)
//   HARBOR_SITE_SCALE_PRELOAD     probe-table rows to recover (default 2000)
//   HARBOR_SITE_SCALE_OUT          output JSON path (default BENCH_site_scale.json)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace harbor::bench {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoll(v, nullptr, 10) : fallback;
}

/// Live OS threads in this process, from /proc/self/status. The whole
/// point of the shared runtime is that this number no longer scales with
/// the site count.
int CountProcessThreads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

struct SiteScaleResult {
  int sites = 0;
  int threads_baseline = 0;
  int threads_after_create = 0;
  int threads_after_run = 0;
  double tps = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  double offline_ms = 0;
  double phase3_ms = 0;
  double total_ms = 0;
  int64_t tuples_recovered = 0;
  int64_t sched_tasks_run = 0;
  int64_t sched_spares = 0;
  int sched_threads = 0;
};

SiteScaleResult RunOne(int sites, int64_t duration_ms, int64_t preload_rows) {
  SiteScaleResult r;
  r.sites = sites;
  r.threads_baseline = CountProcessThreads();

  ClusterOptions opt;
  opt.num_workers = sites;
  opt.protocol = CommitProtocol::kOptimized3PC;
  opt.group_commit = true;
  // Zero-cost sim: the measurement target is protocol + scheduling
  // overhead as sites multiply, not modeled disk/NIC time.
  opt.sim = SimConfig::Zero();
  opt.epoch_tick_ms = 10;
  // 2 MB of buffer pool per site keeps a 128-site cluster inside a small
  // container's memory; the workload is sized to fit.
  opt.buffer_pages = 512;
  auto cluster_r = Cluster::Create(opt);
  HARBOR_CHECK_OK(cluster_r.status());
  std::unique_ptr<Cluster> cluster = std::move(cluster_r).value();
  r.threads_after_create = CountProcessThreads();

  // Fixed-size probe table pinned to workers 0/1/2: the recovery
  // measurement recovers the same data at every site count, so any growth
  // in offline time is per-site runtime overhead, not workload size.
  TableSpec probe_spec;
  probe_spec.name = "probe";
  probe_spec.schema = EvalSchema();
  probe_spec.default_segment_page_budget = 64;
  for (int w = 0; w < 3; ++w) {
    ReplicaSpec rep;
    rep.worker_index = w;
    probe_spec.replicas.push_back(rep);
  }
  auto probe = cluster->CreateTable(probe_spec);
  HARBOR_CHECK_OK(probe.status());
  Preload(cluster.get(), *probe, static_cast<size_t>(preload_rows),
          /*tuples_per_epoch=*/256);

  // Stream tables spread over the whole cluster by rendezvous hash,
  // replication factor 2 — the many-site population the throughput
  // streams write into.
  const int num_tables = std::min(sites, 16);
  std::vector<TableId> tables;
  for (int t = 0; t < num_tables; ++t) {
    TableSpec spec;
    spec.name = "t" + std::to_string(t);
    spec.schema = EvalSchema();
    spec.default_segment_page_budget = 64;
    spec.replication_factor = 2;
    auto table = cluster->CreateTable(spec);
    HARBOR_CHECK_OK(table.status());
    tables.push_back(*table);
  }
  HARBOR_CHECK_OK(cluster->CheckpointAll());

  const int streams = std::min(sites, 8);
  ThroughputResult tp = MeasureInsertThroughput(
      cluster.get(), tables, streams, duration_ms / 1000.0,
      /*cpu_cycles=*/0, /*warmup_seconds=*/0.2);
  r.tps = tp.tps;
  r.committed = tp.committed;
  r.aborted = tp.aborted;
  r.threads_after_run = CountProcessThreads();

  // Recovery: absorb the stream deltas into a fresh checkpoint first —
  // which tables rendezvous onto worker 0 varies with the site count —
  // then commit a fixed post-checkpoint delta on the probe, so phase 2
  // copies the same tuples at every site count and offline-time growth
  // isolates per-site runtime overhead.
  HARBOR_CHECK_OK(cluster->CheckpointAll());
  const int kProbeDelta = 500;
  for (int i = 0; i < kProbeDelta; ++i) {
    HARBOR_CHECK_OK(
        cluster->coordinator()->InsertTxn(*probe, EvalRow(1000000 + i)));
  }
  cluster->CrashWorker(0);
  RecoveryOptions ropt;
  ropt.max_parallel_streams = 2;
  auto stats = cluster->RecoverWorker(0, ropt);
  HARBOR_CHECK_OK(stats.status());
  r.offline_ms = stats->offline_seconds * 1000.0;
  r.phase3_ms = stats->phase3_seconds * 1000.0;
  r.total_ms = stats->total_seconds * 1000.0;
  for (const ObjectRecoveryStats& o : stats->objects) {
    r.tuples_recovered += static_cast<int64_t>(o.phase2_tuples_copied +
                                               o.phase3_tuples_copied);
  }

  r.sched_tasks_run = cluster->scheduler()->tasks_run();
  r.sched_spares = cluster->scheduler()->spares_spawned();
  r.sched_threads = cluster->scheduler()->threads_alive();
  return r;
}

void Run() {
  Banner("site scale-out on the shared scheduler runtime",
         "single-process many-site deployment; thread-per-site removal");
  const int64_t duration_ms = EnvInt("HARBOR_SITE_SCALE_DURATION_MS", 500);
  const int64_t preload_rows = EnvInt("HARBOR_SITE_SCALE_PRELOAD", 2000);
  const char* out_env = std::getenv("HARBOR_SITE_SCALE_OUT");
  const std::string out_path = out_env ? out_env : "BENCH_site_scale.json";

  std::vector<int> site_counts;
  const char* sites_env = std::getenv("HARBOR_SITE_SCALE_SITES");
  std::string sites_str = sites_env ? sites_env : "8,32,128";
  for (size_t pos = 0; pos < sites_str.size();) {
    size_t comma = sites_str.find(',', pos);
    if (comma == std::string::npos) comma = sites_str.size();
    site_counts.push_back(std::atoi(sites_str.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }

  std::printf("%-8s %8s %8s %10s %10s %10s %10s %12s %8s\n", "sites",
              "threads", "peak", "tps", "offline", "total", "recovered",
              "tasks_run", "spares");
  std::vector<SiteScaleResult> results;
  for (int sites : site_counts) {
    SiteScaleResult r = RunOne(sites, duration_ms, preload_rows);
    std::printf("%-8d %8d %8d %10.0f %8.1fms %8.1fms %10lld %12lld %8lld\n",
                r.sites, r.threads_after_create, r.threads_after_run, r.tps,
                r.offline_ms, r.total_ms,
                static_cast<long long>(r.tuples_recovered),
                static_cast<long long>(r.sched_tasks_run),
                static_cast<long long>(r.sched_spares));
    std::fflush(stdout);
    results.push_back(r);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_site_scale\",\n");
  std::fprintf(
      f,
      "  \"description\": \"One process hosting N worker sites on the shared "
      "task-scheduler runtime: every site's RPC dispatch strand, the "
      "checkpoint/epoch timers, consensus rounds and recovery fan-out "
      "multiplex onto one fixed worker pool, so process thread count stays "
      "flat as sites grow (threads_after_create). Throughput is %d "
      "conflict-free single-insert streams over replication_factor-2 tables "
      "placed by rendezvous hash. Recovery checkpoints the cluster, commits "
      "a fixed 500-row delta to a %lld-row probe table (replicas pinned on "
      "workers 0/1/2), then crashes site 1 and runs three-phase HARBOR "
      "recovery (max_parallel_streams=2) while the rest of the cluster "
      "stays online; offline_ms is the phase-1..2 window. The recovered "
      "data is identical at every site count, so offline-time growth "
      "isolates per-site runtime overhead.\",\n",
      8, static_cast<long long>(preload_rows));
  std::fprintf(f,
               "  \"environment\": {\"cpus\": %ld, \"duration_ms\": %lld, "
               "\"sim\": \"Zero (no modeled disk/net: measures protocol + "
               "scheduling overhead)\", \"protocol\": \"optimized-3PC\", "
               "\"buffer_pages_per_site\": 512},\n",
               sysconf(_SC_NPROCESSORS_ONLN),
               static_cast<long long>(duration_ms));
  std::fprintf(f, "  \"grid\": {\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const SiteScaleResult& r = results[i];
    std::fprintf(
        f,
        "    \"sites_%d\": {\"threads_baseline\": %d, "
        "\"threads_after_create\": %d, \"threads_after_run\": %d, "
        "\"tps\": %.1f, \"committed\": %lld, \"aborted\": %lld, "
        "\"recovery_offline_ms\": %.1f, \"recovery_phase3_ms\": %.1f, "
        "\"recovery_total_ms\": %.1f, \"tuples_recovered\": %lld, "
        "\"sched_tasks_run\": %lld, \"sched_spares_spawned\": %lld, "
        "\"sched_threads_alive\": %d}%s\n",
        r.sites, r.threads_baseline, r.threads_after_create,
        r.threads_after_run, r.tps, static_cast<long long>(r.committed),
        static_cast<long long>(r.aborted), r.offline_ms, r.phase3_ms,
        r.total_ms, static_cast<long long>(r.tuples_recovered),
        static_cast<long long>(r.sched_tasks_run),
        static_cast<long long>(r.sched_spares), r.sched_threads,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
