#ifndef HARBOR_BENCH_BENCH_RECOVERY_UTIL_H_
#define HARBOR_BENCH_BENCH_RECOVERY_UTIL_H_

#include <functional>

#include "bench/bench_util.h"

namespace harbor::bench {

/// The four recovery scenarios of §6.4:
///   1. ARIES, one table            (traditional 2PC worker log)
///   2. HARBOR, one table
///   3. HARBOR, two tables, serial
///   4. HARBOR, two tables, parallel
struct RecoveryScenario {
  const char* name;
  bool aries;
  int num_tables;
  bool parallel;
};

inline std::vector<RecoveryScenario> PaperRecoveryScenarios() {
  return {
      {"ARIES, 1 table", true, 1, false},
      {"HARBOR, serial, 2 tables", false, 2, false},
      {"HARBOR, parallel, 2 tables", false, 2, true},
      {"HARBOR, 1 table", false, 1, false},
  };
}

struct RecoveryRunResult {
  double recovery_seconds = 0;
  RecoveryStats stats;
};

/// Builds a fresh 3-worker cluster with `num_tables` preloaded tables of
/// `preload_tuples` rows each (the scaled stand-ins for the paper's 1 GB
/// tables of 101 segments), checkpoints everything, runs `workload`, crashes
/// worker 2 and measures bringing it back online. No transactions run during
/// recovery (as in §6.4; §6.5 covers the online case).
inline RecoveryRunResult RunRecoveryExperiment(
    const RecoveryScenario& scenario, size_t preload_tuples,
    uint32_t segment_pages,
    const std::function<void(Cluster*, const std::vector<TableId>&)>&
        workload) {
  // One insertion epoch per preloaded segment (50 tuples/page), so the
  // segment directory's insertion ranges are meaningful.
  const size_t tuples_per_epoch = static_cast<size_t>(segment_pages) * 50;
  auto cluster = MakePaperCluster(
      scenario.aries ? CommitProtocol::kTraditional2PC
                     : CommitProtocol::kOptimized3PC,
      /*workers=*/3, /*group_commit=*/true, /*checkpoint_period_ms=*/0);
  std::vector<TableId> tables;
  for (int t = 0; t < scenario.num_tables; ++t) {
    TableId table =
        MakeEvalTable(cluster.get(), "t" + std::to_string(t), segment_pages);
    Preload(cluster.get(), table, preload_tuples, tuples_per_epoch);
    tables.push_back(table);
  }
  HARBOR_CHECK_OK(cluster->CheckpointAll());

  workload(cluster.get(), tables);
  cluster->AdvanceEpoch();

  cluster->CrashWorker(2);
  RecoveryOptions opt;
  opt.parallel = scenario.parallel;
  Stopwatch watch;
  auto stats = cluster->RecoverWorker(2, opt);
  HARBOR_CHECK_OK(stats.status());
  RecoveryRunResult result;
  result.recovery_seconds = watch.ElapsedSeconds();
  result.stats = std::move(stats).value();
  return result;
}

/// Inserts `total` rows spread over the tables through committed
/// transactions. The rows are batched `rows_per_txn` to a transaction: the
/// recovery cost under both ARIES (log records) and HARBOR (tuples to copy)
/// is driven by the *row* count, and batching keeps the setup phase short —
/// single-row transactions into one table serialize on the last page's
/// exclusive lock, which only slows the (unmeasured) load.
inline void RunInsertTxns(Cluster* cluster, const std::vector<TableId>& tables,
                          size_t total, size_t rows_per_txn = 50,
                          int streams = 3) {
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < streams; ++s) {
    threads.emplace_back([&, s] {
      while (true) {
        size_t start = next.fetch_add(rows_per_txn);
        if (start >= total) return;
        size_t end = std::min(total, start + rows_per_txn);
        TableId table = tables[(start / rows_per_txn) % tables.size()];
        // Deadlock victims (lock timeouts) retry, as a client would.
        while (true) {
          Coordinator* coord = cluster->coordinator();
          auto txn = coord->Begin();
          HARBOR_CHECK_OK(txn.status());
          Status st = Status::OK();
          for (size_t i = start; i < end && st.ok(); ++i) {
            st = coord->Insert(txn.value(), table,
                               EvalRow(static_cast<int32_t>(1000000 + i)));
          }
          if (st.ok()) st = coord->Commit(*txn);
          if (st.ok()) break;
          (void)coord->Abort(*txn);
          HARBOR_CHECK(st.IsAborted() || st.IsTimedOut());
        }
        (void)s;
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace harbor::bench

#endif  // HARBOR_BENCH_BENCH_RECOVERY_UTIL_H_
