// Microbenchmarks of the substrate components (google-benchmark): heap page
// operations, buffer pool access, lock manager, log appends/forces, tuple
// pack/unpack, and sequential scans. Pure in-memory speed — the simulated
// cost model is disabled so these measure the implementation itself.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "bench/bench_util.h"
#include "buffer/buffer_pool.h"
#include "core/recovery_manager.h"
#include "exec/seq_scan.h"
#include "lock/lock_manager.h"
#include "obs/observer.h"
#include "sim/sim_disk.h"
#include "storage/heap_page.h"
#include "storage/local_catalog.h"
#include "tests/test_util.h"
#include "txn/version_store.h"
#include "wal/log_manager.h"

namespace harbor {
namespace {

std::string BenchDir(const std::string& hint) {
  std::string tmpl = "/tmp/harbor-micro-" + hint + "-XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  HARBOR_CHECK(dir != nullptr);
  return dir;
}

Schema BenchSchema() {
  std::vector<Column> cols;
  for (int i = 0; i < 14; ++i) {
    cols.push_back(Column::Int32("f" + std::to_string(i)));
  }
  return Schema(std::move(cols));
}

void BM_TuplePackUnpack(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::vector<Value> values;
  for (int i = 0; i < 14; ++i) values.push_back(Value(i));
  Tuple t(values);
  t.set_tuple_id(1);
  std::vector<uint8_t> buf(schema.tuple_bytes());
  for (auto _ : state) {
    t.Pack(schema, buf.data());
    Tuple back = Tuple::Unpack(schema, buf.data());
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_TuplePackUnpack);

void BM_HeapPageInsert(benchmark::State& state) {
  std::vector<uint8_t> page(kPageSize);
  HeapPage view(page.data(), 80);
  view.Init();
  std::vector<uint8_t> tuple(80, 0x5a);
  for (auto _ : state) {
    auto slot = view.InsertTuple(tuple.data());
    if (!slot.ok()) {
      view.Init();
      continue;
    }
    benchmark::DoNotOptimize(*slot);
  }
}
BENCHMARK(BM_HeapPageInsert);

void BM_BufferPoolHit(benchmark::State& state) {
  FileManager fm(BenchDir("pool"), nullptr);
  HARBOR_CHECK_OK(fm.OpenOrCreate(1));
  HARBOR_CHECK_OK(fm.AllocatePage(1).status());
  BufferPool pool(&fm, 16);
  for (auto _ : state) {
    auto h = pool.GetPage(PageId{1, 0});
    benchmark::DoNotOptimize(h->data());
  }
}
BENCHMARK(BM_BufferPoolHit);

// --------------------------------------------------------------------------
// Multi-threaded buffer-pool benchmarks (threads x pool-size grid). These are
// the numbers recorded in BENCH_buffer_pool.json: aggregate page-access
// throughput when several site threads share one pool, with and without
// modeled disk latency on the miss path. Run them with
//   bench_micro --benchmark_filter=BufferPoolMT --benchmark_format=json

struct MtPoolEnv {
  std::unique_ptr<SimDisk> disk;
  std::unique_ptr<FileManager> fm;
  std::unique_ptr<BufferPool> pool;
};

/// Process-lifetime environment keyed by (tag, pool size); the first caller
/// builds it. File pages are preallocated through a cost-model-free
/// FileManager so setup I/O is never charged against the benchmark's disk.
MtPoolEnv& MtEnv(const std::string& tag, size_t pool_pages, size_t file_pages,
                 bool modeled_disk,
                 EvictionPolicy eviction = EvictionPolicy::kRandom) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<MtPoolEnv>> envs;
  std::lock_guard<std::mutex> lock(mu);
  auto& e = envs[tag + "/" + std::to_string(pool_pages)];
  if (!e) {
    e = std::make_unique<MtPoolEnv>();
    std::string dir = BenchDir("mtpool");
    {
      FileManager setup(dir, nullptr);
      HARBOR_CHECK_OK(setup.OpenOrCreate(1));
      for (size_t i = 0; i < file_pages; ++i) {
        HARBOR_CHECK_OK(setup.AllocatePage(1).status());
      }
    }
    if (modeled_disk) {
      // Scaled-down cost model (fast modern disk): the shape (miss >> hit)
      // is what matters, the absolute seek time is shrunk so the grid
      // finishes quickly.
      SimConfig cfg;
      cfg.disk_bandwidth_bytes_per_sec = 1'000'000'000;
      cfg.disk_random_latency_ns = 15'000;
      cfg.disk_force_latency_ns = 15'000;
      e->disk = std::make_unique<SimDisk>("bench-mt-" + tag, cfg);
    }
    e->fm = std::make_unique<FileManager>(dir, e->disk.get());
    HARBOR_CHECK_OK(e->fm->OpenOrCreate(1));
    BufferPool::Options po;
    po.eviction = eviction;
    if (const char* sh = ::getenv("BENCH_SHARDS")) po.shards = atoi(sh);
    e->pool = std::make_unique<BufferPool>(e->fm.get(), pool_pages, po);
  }
  return *e;
}

Random MtRng(const benchmark::State& state) {
  return Random(Random::GlobalSeed() ^
                (static_cast<uint64_t>(state.thread_index()) * 2654435761u));
}

/// The per-page "work" of a scan: touch every word, as a tuple scan would.
uint64_t ChecksumPage(const uint8_t* data) {
  uint64_t sum = 0;
  for (size_t k = 0; k < kPageSize; k += sizeof(uint64_t)) {
    uint64_t w;
    std::memcpy(&w, data + k, sizeof(w));
    sum += w;
  }
  return sum;
}

/// Pure hit-path scan: every thread reads pages of a resident hot set. This
/// isolates the cost of pin/unpin and page-table lookup under concurrency.
void BM_BufferPoolMTScanHot(benchmark::State& state) {
  const size_t pool_pages = static_cast<size_t>(state.range(0));
  const uint32_t hot = static_cast<uint32_t>(pool_pages / 2);
  MtPoolEnv& env = MtEnv("hot", pool_pages, pool_pages, false);
  Random rng = MtRng(state);
  for (auto _ : state) {
    PageId pid{1, static_cast<uint32_t>(rng.Uniform(hot))};
    auto h = env.pool->GetPage(pid, /*sequential=*/true);
    HARBOR_CHECK(h.ok());
    PageLatchGuard latch(*h);
    benchmark::DoNotOptimize(ChecksumPage(h->data()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolMTScanHot)
    ->Arg(64)
    ->Arg(1024)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Mixed scan: mostly hot hits plus an occasional cold read that misses and
/// pays the modeled seek. With the single-mutex pool the miss's disk time is
/// spent holding the global lock, so every hitting thread stalls behind it.
void BM_BufferPoolMTScanMixed(benchmark::State& state) {
  const size_t pool_pages = static_cast<size_t>(state.range(0));
  const uint32_t hot = static_cast<uint32_t>(pool_pages / 2);
  const uint32_t cold_lo = static_cast<uint32_t>(pool_pages * 2);
  const uint32_t cold_n = 2048;
  const bool lru = state.range(1) != 0;
  MtPoolEnv& env =
      MtEnv(lru ? "mixed-lru" : "mixed", pool_pages, cold_lo + cold_n, true,
            lru ? EvictionPolicy::kLru : EvictionPolicy::kRandom);
  Random rng = MtRng(state);
  int64_t i = 0;
  for (auto _ : state) {
    const bool cold = (++i % 64) == 0;
    const uint32_t page_no = cold
                                 ? cold_lo + static_cast<uint32_t>(
                                                 rng.Uniform(cold_n))
                                 : static_cast<uint32_t>(rng.Uniform(hot));
    auto h = env.pool->GetPage(PageId{1, page_no}, /*sequential=*/false);
    HARBOR_CHECK(h.ok());
    PageLatchGuard latch(*h);
    benchmark::DoNotOptimize(ChecksumPage(h->data()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolMTScanMixed)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Update mix: mostly hot-page writes (dirtying frames) plus an occasional
/// cold read; evictions must steal dirty victims, so the flush write path
/// (hooks + WritePage) runs continuously alongside foreground traffic.
void BM_BufferPoolMTUpdate(benchmark::State& state) {
  const size_t pool_pages = static_cast<size_t>(state.range(0));
  const uint32_t hot = static_cast<uint32_t>(pool_pages / 2);
  const uint32_t cold_lo = static_cast<uint32_t>(pool_pages * 2);
  const uint32_t cold_n = 2048;
  MtPoolEnv& env = MtEnv("update", pool_pages, cold_lo + cold_n, true);
  Random rng = MtRng(state);
  int64_t i = 0;
  for (auto _ : state) {
    const bool cold = (++i % 64) == 0;
    if (cold) {
      auto h = env.pool->GetPage(
          PageId{1, cold_lo + static_cast<uint32_t>(rng.Uniform(cold_n))},
          /*sequential=*/false);
      HARBOR_CHECK(h.ok());
      PageLatchGuard latch(*h);
      benchmark::DoNotOptimize(h->data()[0]);
    } else {
      auto h = env.pool->GetPage(
          PageId{1, static_cast<uint32_t>(rng.Uniform(hot))},
          /*sequential=*/false);
      HARBOR_CHECK(h.ok());
      PageLatchGuard latch(*h);
      h->data()[64] = static_cast<uint8_t>(i);
      h->MarkDirty();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolMTUpdate)
    ->Arg(256)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_LockAcquireRelease(benchmark::State& state) {
  LockManager lm;
  LockOwnerId owner = 1;
  for (auto _ : state) {
    HARBOR_CHECK_OK(lm.AcquirePageLock(owner, PageId{1, 7},
                                       LockMode::kExclusive));
    lm.ReleaseAll(owner);
    ++owner;
  }
}
BENCHMARK(BM_LockAcquireRelease);

void BM_LogAppend(benchmark::State& state) {
  auto log_r = LogManager::Open(BenchDir("wal"), nullptr, true);
  HARBOR_CHECK_OK(log_r.status());
  auto log = std::move(log_r).value();
  LogRecord rec;
  rec.type = LogRecordType::kTupleInsert;
  rec.txn = 1;
  rec.tuple_image.assign(80, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log->Append(rec));
  }
  HARBOR_CHECK_OK(log->FlushAll());
}
BENCHMARK(BM_LogAppend);

void BM_LogAppendAndForce(benchmark::State& state) {
  auto log_r = LogManager::Open(BenchDir("walf"), nullptr, true);
  HARBOR_CHECK_OK(log_r.status());
  auto log = std::move(log_r).value();
  LogRecord rec;
  rec.type = LogRecordType::kTxnCommit;
  rec.txn = 1;
  for (auto _ : state) {
    Lsn lsn = log->Append(rec);
    HARBOR_CHECK_OK(log->Flush(lsn));
  }
}
BENCHMARK(BM_LogAppendAndForce);

class ScanFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (store_) return;
    fm_ = std::make_unique<FileManager>(BenchDir("scan"), nullptr);
    catalog_ = std::make_unique<LocalCatalog>(fm_.get());
    pool_ = std::make_unique<BufferPool>(fm_.get(), 4096);
    locks_ = std::make_unique<LockManager>();
    txns_ = std::make_unique<TxnTable>();
    store_ = std::make_unique<VersionStore>(catalog_.get(), pool_.get(),
                                            locks_.get(), nullptr,
                                            txns_.get());
    auto obj = catalog_->CreateObject(1, 1, "t", BenchSchema(),
                                      PartitionRange::Full(), 64);
    HARBOR_CHECK_OK(obj.status());
    obj_ = *obj;
    std::vector<Value> values;
    for (int i = 0; i < 14; ++i) values.push_back(Value(i));
    for (int i = 0; i < 50000; ++i) {
      Tuple t(values);
      t.set_tuple_id(static_cast<TupleId>(i));
      t.set_insertion_ts(1);
      HARBOR_CHECK_OK(store_->InsertCommittedTuple(obj_, t).status());
    }
  }

 protected:
  static std::unique_ptr<FileManager> fm_;
  static std::unique_ptr<LocalCatalog> catalog_;
  static std::unique_ptr<BufferPool> pool_;
  static std::unique_ptr<LockManager> locks_;
  static std::unique_ptr<TxnTable> txns_;
  static std::unique_ptr<VersionStore> store_;
  static TableObject* obj_;
};

std::unique_ptr<FileManager> ScanFixture::fm_;
std::unique_ptr<LocalCatalog> ScanFixture::catalog_;
std::unique_ptr<BufferPool> ScanFixture::pool_;
std::unique_ptr<LockManager> ScanFixture::locks_;
std::unique_ptr<TxnTable> ScanFixture::txns_;
std::unique_ptr<VersionStore> ScanFixture::store_;
TableObject* ScanFixture::obj_;

BENCHMARK_F(ScanFixture, SeqScan50K)(benchmark::State& state) {
  for (auto _ : state) {
    ScanSpec spec;
    spec.object_id = 1;
    spec.mode = ScanMode::kVisible;
    spec.as_of = 1;
    SeqScanOperator scan(store_.get(), obj_, spec);
    auto rows = CollectAll(&scan);
    HARBOR_CHECK_OK(rows.status());
    benchmark::DoNotOptimize(rows->size());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}

BENCHMARK_F(ScanFixture, SeqScanPrunedToLastSegment)(benchmark::State& state) {
  for (auto _ : state) {
    ScanSpec spec;
    spec.object_id = 1;
    spec.mode = ScanMode::kSeeDeleted;
    spec.has_insertion_after = true;
    spec.insertion_after = 1;  // nothing matches; pruning skips everything
    SeqScanOperator scan(store_.get(), obj_, spec);
    auto rows = CollectAll(&scan);
    HARBOR_CHECK_OK(rows.status());
    benchmark::DoNotOptimize(rows->size());
  }
}

// ---------------------------------------------------------------------
// Row vs columnar scan throughput on a selective predicate. Two objects
// with identical data: one row-format, one with the PAX-style columnar
// segment layout. The predicate selects ~1.5% of rows on a low-cardinality
// CHAR column, so the columnar path compares 1-byte dictionary codes (and,
// once hot, resolves through the per-segment adaptive eq index) while the
// row path must unpack every slot. Source of BENCH_columnar_scan.json:
//   bench_micro --benchmark_filter=ColumnarVsRowScan
//               --benchmark_format=json

constexpr size_t kColScanRows = 50000;

Schema ColScanSchema() {
  std::vector<Column> cols;
  for (int i = 0; i < 12; ++i) {
    cols.push_back(Column::Int32("f" + std::to_string(i)));
  }
  cols.push_back(Column::Char("tag", 16));
  return Schema(std::move(cols));
}

struct ColScanEnv {
  std::unique_ptr<FileManager> fm;
  std::unique_ptr<LocalCatalog> catalog;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<LockManager> locks;
  std::unique_ptr<TxnTable> txns;
  std::unique_ptr<VersionStore> store;
  TableObject* row_obj = nullptr;
  TableObject* col_obj = nullptr;
};

ColScanEnv& ColEnv() {
  static ColScanEnv* env = [] {
    auto* e = new ColScanEnv();
    e->fm = std::make_unique<FileManager>(BenchDir("colscan"), nullptr);
    e->catalog = std::make_unique<LocalCatalog>(e->fm.get());
    e->pool = std::make_unique<BufferPool>(e->fm.get(), 8192);
    e->locks = std::make_unique<LockManager>();
    e->txns = std::make_unique<TxnTable>();
    e->store = std::make_unique<VersionStore>(e->catalog.get(), e->pool.get(),
                                              e->locks.get(), nullptr,
                                              e->txns.get());
    Schema schema = ColScanSchema();
    auto row = e->catalog->CreateObject(1, 1, "row", schema,
                                        PartitionRange::Full(), 64);
    HARBOR_CHECK_OK(row.status());
    e->row_obj = *row;
    auto col = e->catalog->CreateObject(2, 1, "col", schema,
                                        PartitionRange::Full(), 64,
                                        /*indexed_column=*/"",
                                        /*columnar=*/true);
    HARBOR_CHECK_OK(col.status());
    e->col_obj = *col;
    for (size_t i = 0; i < kColScanRows; ++i) {
      std::vector<Value> values;
      for (int c = 0; c < 12; ++c) {
        values.push_back(Value(static_cast<int32_t>(i + c)));
      }
      values.push_back(Value(i % 64 == 0 ? "hot" : "cold"));
      Tuple t(values);
      t.set_tuple_id(static_cast<TupleId>(i));
      t.set_insertion_ts(1);
      HARBOR_CHECK_OK(e->store->InsertCommittedTuple(e->row_obj, t).status());
      HARBOR_CHECK_OK(e->store->InsertCommittedTuple(e->col_obj, t).status());
    }
    return e;
  }();
  return *env;
}

void BM_ColumnarVsRowScan(benchmark::State& state) {
  ColScanEnv& env = ColEnv();
  TableObject* obj = state.range(0) == 0 ? env.row_obj : env.col_obj;
  size_t matched = 0;
  size_t columnar_segments = 0;
  size_t adaptive = 0;
  for (auto _ : state) {
    ScanSpec spec;
    spec.object_id = obj->object_id;
    spec.mode = ScanMode::kVisible;
    spec.as_of = 1;
    spec.predicate.And("tag", CompareOp::kEq, Value("hot"));
    SeqScanOperator scan(env.store.get(), obj, spec);
    auto rows = CollectAll(&scan);
    HARBOR_CHECK_OK(rows.status());
    HARBOR_CHECK(rows->size() == (kColScanRows + 63) / 64);
    matched = rows->size();
    columnar_segments = scan.columnar_segments();
    adaptive = scan.adaptive_index_probes();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kColScanRows));
  state.counters["rows_matched"] = static_cast<double>(matched);
  state.counters["columnar_segments"] = static_cast<double>(columnar_segments);
  state.counters["adaptive_index_segments"] = static_cast<double>(adaptive);
}
BENCHMARK(BM_ColumnarVsRowScan)
    ->ArgName("columnar")
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// ---------------------------------------------------------------------
// Recovery catch-up transfer: crash one of two replicas, bulk-load a
// post-checkpoint delta into the survivor, and measure bringing the
// crashed site back online. range(0) is the delta row count, range(1) the
// streaming chunk size in tuples (0 = monolithic single-reply scans),
// range(2) whether the table uses the columnar segment layout (chunk
// replies then ship FOR/dictionary-compressed column blocks instead of
// serialized rows). peak_reply_bytes is the largest scan-reply payload the
// recovering site saw -- the quantity chunking bounds, and which the
// columnar wire encoding shrinks. Source of BENCH_recovery_stream.json:
//   bench_micro --benchmark_filter=RecoveryStreamTransfer
//               --benchmark_format=json
void BM_RecoveryStreamTransfer(benchmark::State& state) {
  const size_t delta_rows = static_cast<size_t>(state.range(0));
  const size_t chunk = static_cast<size_t>(state.range(1));
  const bool columnar = state.range(2) != 0;
  int64_t peak_reply = 0;
  int64_t chunks = 0;
  for (auto _ : state) {
    ClusterOptions opt;
    opt.num_workers = 2;
    opt.protocol = CommitProtocol::kOptimized3PC;
    opt.sim = SimConfig::Zero();
    auto cluster_r = Cluster::Create(opt);
    HARBOR_CHECK_OK(cluster_r.status());
    std::unique_ptr<Cluster> cluster = std::move(cluster_r).value();
    TableId table = bench::MakeEvalTable(cluster.get(), "t", 16, columnar);
    bench::Preload(cluster.get(), table, 5000, 1000);
    cluster->AdvanceEpoch();
    HARBOR_CHECK_OK(cluster->CheckpointAll());
    const Timestamp ckpt = cluster->authority()->StableTime();
    cluster->CrashWorker(1);
    // The delta the survivor accumulated while the site was down.
    std::vector<LoadRow> rows;
    rows.reserve(delta_rows);
    Timestamp max_ts = ckpt + 1;
    for (size_t i = 0; i < delta_rows; ++i) {
      LoadRow row;
      row.tuple_id = (uint64_t{7} << 32) + i;
      row.insertion_ts = ckpt + 1 + static_cast<Timestamp>(i / 500);
      max_ts = std::max(max_ts, row.insertion_ts);
      row.values = bench::EvalRow(static_cast<int32_t>(i));
      rows.push_back(std::move(row));
    }
    HARBOR_CHECK_OK(cluster->BulkLoad(table, rows));
    while (cluster->authority()->StableTime() <= max_ts) {
      cluster->AdvanceEpoch();
    }
    obs::Observer observer;
    observer.Install();
    RecoveryOptions ropt;
    ropt.stream_chunk_tuples = chunk;
    Stopwatch watch;
    auto stats = cluster->RecoverWorker(1, ropt);
    state.SetIterationTime(watch.ElapsedSeconds());
    HARBOR_CHECK_OK(stats.status());
    HARBOR_CHECK((*stats).objects[0].phase2_tuples_copied +
                     (*stats).objects[0].phase3_tuples_copied ==
                 delta_rows);
    const obs::Metrics& m = observer.MetricsFor(Cluster::WorkerSite(1));
    const obs::Histogram& bytes =
        m.histogram(obs::HistogramId::kRecoveryChunkBytes);
    if (bytes.count() > 0) peak_reply = std::max(peak_reply, bytes.max());
    chunks += m.counter(obs::CounterId::kRecoveryChunks).value();
    observer.Uninstall();
  }
  state.counters["peak_reply_bytes"] = static_cast<double>(peak_reply);
  state.counters["chunks_per_recovery"] =
      benchmark::Counter(static_cast<double>(chunks),
                         benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(delta_rows));
}
BENCHMARK(BM_RecoveryStreamTransfer)
    ->ArgsProduct({{2000, 10000, 40000}, {0, 128, 512, 2048}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Parallel multi-buddy recovery: 5 workers, 4 fully replicated tables, each
// with a 10k-row post-checkpoint delta (40k rows total). One site crashes
// and recovers streaming each object's catch-up range from range(0) buddies
// concurrently. Objects recover serially (parallel=false) so the
// measurement isolates the per-object multi-stream win: with 1 stream an
// object's whole delta serializes through a single buddy's NIC, with 4 the
// disjoint insertion-time windows split across all four surviving replicas.
// The network is modeled at the paper's measured scale (85 Mb/s ~= 10.6
// MB/s, §6.1) rather than the default 2x-scaled SimConfig: the paper's
// recovery experiments stream ~1 GB tables and are transfer-dominated, and
// matching that regime at bench scale is what makes the per-buddy NIC the
// resource multi-buddy streaming parallelizes. offline_seconds is the
// phases-1+2 wall time. Source of BENCH_recovery_parallel.json:
//   bench_micro --benchmark_filter=RecoveryParallelTransfer
//               --benchmark_format=json
void BM_RecoveryParallelTransfer(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  constexpr int kTables = 4;
  constexpr size_t kDeltaRows = 10000;  // per table; 40k total
  double offline = 0;
  double phase1 = 0, phase2 = 0, phase3 = 0;
  int64_t failovers = 0;
  for (auto _ : state) {
    ClusterOptions opt;
    opt.num_workers = 5;
    opt.protocol = CommitProtocol::kOptimized3PC;
    opt.sim = SimConfig();
    opt.sim.net_bandwidth_bytes_per_sec = 10'600'000;  // paper's 85 Mb/s
    opt.sim.net_latency_ns = 150'000;                  // paper-scale RTT/2
    auto cluster_r = Cluster::Create(opt);
    HARBOR_CHECK_OK(cluster_r.status());
    std::unique_ptr<Cluster> cluster = std::move(cluster_r).value();
    std::vector<TableId> tables;
    for (int t = 0; t < kTables; ++t) {
      TableId table =
          bench::MakeEvalTable(cluster.get(), "t" + std::to_string(t), 16);
      bench::Preload(cluster.get(), table, 2000, 500);
      tables.push_back(table);
    }
    cluster->AdvanceEpoch();
    HARBOR_CHECK_OK(cluster->CheckpointAll());
    const Timestamp ckpt = cluster->authority()->StableTime();
    cluster->CrashWorker(4);
    Timestamp max_ts = ckpt + 1;
    for (int t = 0; t < kTables; ++t) {
      std::vector<LoadRow> rows;
      rows.reserve(kDeltaRows);
      for (size_t i = 0; i < kDeltaRows; ++i) {
        LoadRow row;
        row.tuple_id = (uint64_t{7 + t} << 32) + i;
        // ~40 insertion epochs per object so the round has a wide
        // insertion-time range to split into per-buddy windows.
        row.insertion_ts = ckpt + 1 + static_cast<Timestamp>(i / 250);
        max_ts = std::max(max_ts, row.insertion_ts);
        row.values = bench::EvalRow(static_cast<int32_t>(i));
        rows.push_back(std::move(row));
      }
      HARBOR_CHECK_OK(cluster->BulkLoad(tables[t], rows));
    }
    while (cluster->authority()->StableTime() <= max_ts) {
      cluster->AdvanceEpoch();
    }
    obs::Observer observer;
    observer.Install();
    RecoveryOptions ropt;
    ropt.parallel = false;  // one object at a time: isolate stream scaling
    ropt.max_parallel_streams = streams;
    ropt.stream_chunk_tuples = 512;
    Stopwatch watch;
    auto stats = cluster->RecoverWorker(4, ropt);
    state.SetIterationTime(watch.ElapsedSeconds());
    HARBOR_CHECK_OK(stats.status());
    HARBOR_CHECK((*stats).objects.size() == kTables);
    size_t copied = 0;
    for (const ObjectRecoveryStats& o : (*stats).objects) {
      copied += o.phase2_tuples_copied + o.phase3_tuples_copied;
    }
    HARBOR_CHECK(copied == kTables * kDeltaRows);
    offline += (*stats).offline_seconds;
    phase1 += (*stats).phase1_seconds;
    phase2 += (*stats).phase2_seconds;
    phase3 += (*stats).phase3_seconds;
    const obs::Metrics& m = observer.MetricsFor(Cluster::WorkerSite(4));
    failovers += m.counter(obs::CounterId::kRecoveryStreamFailovers).value();
    observer.Uninstall();
  }
  state.counters["offline_seconds"] =
      benchmark::Counter(offline, benchmark::Counter::kAvgIterations);
  state.counters["phase1_seconds"] =
      benchmark::Counter(phase1, benchmark::Counter::kAvgIterations);
  state.counters["phase2_seconds"] =
      benchmark::Counter(phase2, benchmark::Counter::kAvgIterations);
  state.counters["phase3_seconds"] =
      benchmark::Counter(phase3, benchmark::Counter::kAvgIterations);
  state.counters["stream_failovers"] = benchmark::Counter(
      static_cast<double>(failovers), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kTables * kDeltaRows));
}
BENCHMARK(BM_RecoveryParallelTransfer)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Snapshot vs S-locking read throughput under a concurrent update mix.
// range(0): 0 = snapshot (the default lock-free read path), 1 = locking.
// Reader threads (1/4/8) run full-table Querys against a shared 2-worker
// cluster while one background updater continuously commits single-row
// updates; its DML takes X page locks, so locking readers queue behind the
// writer while snapshot readers bypass the LockManager entirely.
// Source of BENCH_snapshot_reads.json:
//   bench_micro --benchmark_filter=SnapshotVsLockingRead
//               --benchmark_format=json

struct SnapshotReadEnv {
  std::unique_ptr<Cluster> cluster;
  TableId table = 0;
  std::thread updater;
  std::atomic<bool> stop{false};
};

SnapshotReadEnv& SnapshotEnv() {
  static SnapshotReadEnv* env = [] {
    auto* e = new SnapshotReadEnv();
    ClusterOptions opt;
    opt.num_workers = 2;
    opt.protocol = CommitProtocol::kOptimized3PC;
    opt.sim = SimConfig::Zero();
    auto cluster_r = Cluster::Create(opt);
    HARBOR_CHECK_OK(cluster_r.status());
    e->cluster = std::move(cluster_r).value();
    e->table = bench::MakeEvalTable(e->cluster.get(), "t", 16);
    bench::Preload(e->cluster.get(), e->table, 2000);
    e->cluster->AdvanceEpoch();
    return e;
  }();
  return *env;
}

void BM_SnapshotVsLockingRead(benchmark::State& state) {
  const ReadMode mode =
      state.range(0) == 0 ? ReadMode::kSnapshot : ReadMode::kLocking;
  SnapshotReadEnv& env = SnapshotEnv();
  Coordinator* coord = env.cluster->coordinator();
  if (state.thread_index() == 0) {
    env.stop.store(false);
    env.updater = std::thread([&env] {
      Coordinator* c = env.cluster->coordinator();
      Random rng(Random::GlobalSeed() ^ 0xBADC0FFEULL);
      while (!env.stop.load(std::memory_order_relaxed)) {
        Predicate p;
        p.And("f0", CompareOp::kEq,
              Value(static_cast<int32_t>(rng.Uniform(2000))));
        auto txn = c->Begin();
        if (!txn.ok()) continue;
        Status st = c->Update(
            *txn, env.table, p,
            {SetClause{"f1", Value(static_cast<int32_t>(rng.Uniform(1000)))}});
        if (st.ok()) {
          (void)c->Commit(*txn);
        } else {
          (void)c->Abort(*txn);
        }
      }
    });
  }
  int64_t ok = 0, failed = 0;
  for (auto _ : state) {
    auto rows = coord->Query(env.table, Predicate(), mode);
    if (rows.ok()) {
      ++ok;
      benchmark::DoNotOptimize(rows->size());
    } else {
      ++failed;  // a locking read can time out behind the writer
    }
  }
  if (state.thread_index() == 0) {
    env.stop.store(true);
    env.updater.join();
  }
  state.SetItemsProcessed(ok);
  state.counters["failed_reads"] = benchmark::Counter(
      static_cast<double>(failed), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_SnapshotVsLockingRead)
    ->ArgName("locking")
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace harbor

BENCHMARK_MAIN();
