// Microbenchmarks of the substrate components (google-benchmark): heap page
// operations, buffer pool access, lock manager, log appends/forces, tuple
// pack/unpack, and sequential scans. Pure in-memory speed — the simulated
// cost model is disabled so these measure the implementation itself.

#include <benchmark/benchmark.h>

#include "buffer/buffer_pool.h"
#include "exec/seq_scan.h"
#include "lock/lock_manager.h"
#include "storage/heap_page.h"
#include "storage/local_catalog.h"
#include "tests/test_util.h"
#include "txn/version_store.h"
#include "wal/log_manager.h"

namespace harbor {
namespace {

std::string BenchDir(const std::string& hint) {
  std::string tmpl = "/tmp/harbor-micro-" + hint + "-XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  HARBOR_CHECK(dir != nullptr);
  return dir;
}

Schema BenchSchema() {
  std::vector<Column> cols;
  for (int i = 0; i < 14; ++i) {
    cols.push_back(Column::Int32("f" + std::to_string(i)));
  }
  return Schema(std::move(cols));
}

void BM_TuplePackUnpack(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::vector<Value> values;
  for (int i = 0; i < 14; ++i) values.push_back(Value(i));
  Tuple t(values);
  t.set_tuple_id(1);
  std::vector<uint8_t> buf(schema.tuple_bytes());
  for (auto _ : state) {
    t.Pack(schema, buf.data());
    Tuple back = Tuple::Unpack(schema, buf.data());
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_TuplePackUnpack);

void BM_HeapPageInsert(benchmark::State& state) {
  std::vector<uint8_t> page(kPageSize);
  HeapPage view(page.data(), 80);
  view.Init();
  std::vector<uint8_t> tuple(80, 0x5a);
  for (auto _ : state) {
    auto slot = view.InsertTuple(tuple.data());
    if (!slot.ok()) {
      view.Init();
      continue;
    }
    benchmark::DoNotOptimize(*slot);
  }
}
BENCHMARK(BM_HeapPageInsert);

void BM_BufferPoolHit(benchmark::State& state) {
  FileManager fm(BenchDir("pool"), nullptr);
  HARBOR_CHECK_OK(fm.OpenOrCreate(1));
  HARBOR_CHECK_OK(fm.AllocatePage(1).status());
  BufferPool pool(&fm, 16);
  for (auto _ : state) {
    auto h = pool.GetPage(PageId{1, 0});
    benchmark::DoNotOptimize(h->data());
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_LockAcquireRelease(benchmark::State& state) {
  LockManager lm;
  LockOwnerId owner = 1;
  for (auto _ : state) {
    HARBOR_CHECK_OK(lm.AcquirePageLock(owner, PageId{1, 7},
                                       LockMode::kExclusive));
    lm.ReleaseAll(owner);
    ++owner;
  }
}
BENCHMARK(BM_LockAcquireRelease);

void BM_LogAppend(benchmark::State& state) {
  auto log_r = LogManager::Open(BenchDir("wal"), nullptr, true);
  HARBOR_CHECK_OK(log_r.status());
  auto log = std::move(log_r).value();
  LogRecord rec;
  rec.type = LogRecordType::kTupleInsert;
  rec.txn = 1;
  rec.tuple_image.assign(80, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log->Append(rec));
  }
  HARBOR_CHECK_OK(log->FlushAll());
}
BENCHMARK(BM_LogAppend);

void BM_LogAppendAndForce(benchmark::State& state) {
  auto log_r = LogManager::Open(BenchDir("walf"), nullptr, true);
  HARBOR_CHECK_OK(log_r.status());
  auto log = std::move(log_r).value();
  LogRecord rec;
  rec.type = LogRecordType::kTxnCommit;
  rec.txn = 1;
  for (auto _ : state) {
    Lsn lsn = log->Append(rec);
    HARBOR_CHECK_OK(log->Flush(lsn));
  }
}
BENCHMARK(BM_LogAppendAndForce);

class ScanFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (store_) return;
    fm_ = std::make_unique<FileManager>(BenchDir("scan"), nullptr);
    catalog_ = std::make_unique<LocalCatalog>(fm_.get());
    pool_ = std::make_unique<BufferPool>(fm_.get(), 4096);
    locks_ = std::make_unique<LockManager>();
    txns_ = std::make_unique<TxnTable>();
    store_ = std::make_unique<VersionStore>(catalog_.get(), pool_.get(),
                                            locks_.get(), nullptr,
                                            txns_.get());
    auto obj = catalog_->CreateObject(1, 1, "t", BenchSchema(),
                                      PartitionRange::Full(), 64);
    HARBOR_CHECK_OK(obj.status());
    obj_ = *obj;
    std::vector<Value> values;
    for (int i = 0; i < 14; ++i) values.push_back(Value(i));
    for (int i = 0; i < 50000; ++i) {
      Tuple t(values);
      t.set_tuple_id(static_cast<TupleId>(i));
      t.set_insertion_ts(1);
      HARBOR_CHECK_OK(store_->InsertCommittedTuple(obj_, t).status());
    }
  }

 protected:
  static std::unique_ptr<FileManager> fm_;
  static std::unique_ptr<LocalCatalog> catalog_;
  static std::unique_ptr<BufferPool> pool_;
  static std::unique_ptr<LockManager> locks_;
  static std::unique_ptr<TxnTable> txns_;
  static std::unique_ptr<VersionStore> store_;
  static TableObject* obj_;
};

std::unique_ptr<FileManager> ScanFixture::fm_;
std::unique_ptr<LocalCatalog> ScanFixture::catalog_;
std::unique_ptr<BufferPool> ScanFixture::pool_;
std::unique_ptr<LockManager> ScanFixture::locks_;
std::unique_ptr<TxnTable> ScanFixture::txns_;
std::unique_ptr<VersionStore> ScanFixture::store_;
TableObject* ScanFixture::obj_;

BENCHMARK_F(ScanFixture, SeqScan50K)(benchmark::State& state) {
  for (auto _ : state) {
    ScanSpec spec;
    spec.object_id = 1;
    spec.mode = ScanMode::kVisible;
    spec.as_of = 1;
    SeqScanOperator scan(store_.get(), obj_, spec);
    auto rows = CollectAll(&scan);
    HARBOR_CHECK_OK(rows.status());
    benchmark::DoNotOptimize(rows->size());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}

BENCHMARK_F(ScanFixture, SeqScanPrunedToLastSegment)(benchmark::State& state) {
  for (auto _ : state) {
    ScanSpec spec;
    spec.object_id = 1;
    spec.mode = ScanMode::kSeeDeleted;
    spec.has_insertion_after = true;
    spec.insertion_after = 1;  // nothing matches; pruning skips everything
    SeqScanOperator scan(store_.get(), obj_, spec);
    auto rows = CollectAll(&scan);
    HARBOR_CHECK_OK(rows.status());
    benchmark::DoNotOptimize(rows->size());
  }
}

}  // namespace
}  // namespace harbor

BENCHMARK_MAIN();
