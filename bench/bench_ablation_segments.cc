// Ablation: segment size (§4.2).
//
// The segment architecture trades a little normal-processing overhead
// (extra per-segment setup during scans, earlier rollovers during inserts)
// for recovery-query pruning. This bench quantifies both sides: full-scan
// and insert cost vs segment size, and the recovery benefit of pruning via
// a recovery run whose updates touch only the newest data.

#include <cstdio>

#include "bench/bench_recovery_util.h"
#include "exec/seq_scan.h"

namespace harbor::bench {
namespace {

constexpr size_t kRows = 40000;  // ~800 pages of data per replica

void Run() {
  Banner("Ablation — segment size vs scan/insert/recovery cost", "§4.2");

  const std::vector<uint32_t> budgets = {8, 32, 128, 1024};
  std::printf("%14s %10s %12s %12s %14s %9s %8s\n", "segment pages",
              "segments", "scan (ms)", "insert(tps)", "recovery (ms)",
              "pruned", "pages");
  for (uint32_t budget : budgets) {
    auto cluster = MakePaperCluster(CommitProtocol::kOptimized3PC, 2,
                                    /*group_commit=*/true,
                                    /*checkpoint_period_ms=*/0);
    TableId table = MakeEvalTable(cluster.get(), "t", budget);
    Preload(cluster.get(), table, kRows);
    HARBOR_CHECK_OK(cluster->CheckpointAll());

    // Full sequential scan at worker 0 (historical, lock-free).
    Worker* w0 = cluster->worker(0);
    TableObject* obj = w0->local_catalog()->objects()[0];
    Stopwatch scan_watch;
    ScanSpec spec;
    spec.object_id = obj->object_id;
    spec.mode = ScanMode::kVisible;
    spec.as_of = cluster->authority()->StableTime();
    SeqScanOperator scan(w0->store(), obj, spec);
    auto rows = CollectAll(&scan);
    HARBOR_CHECK_OK(rows.status());
    HARBOR_CHECK(rows->size() == kRows);
    double scan_ms = scan_watch.ElapsedMillis();
    size_t segments = obj->file->num_segments();

    // Pruning effectiveness of a selective scan on the same layout: an
    // insertion-range probe for data newer than anything loaded. The
    // directory prunes row segments; zone (min/max) stats prune columnar
    // images. Both collapse to "visit nothing" — the counters prove it.
    ScanSpec probe;
    probe.object_id = obj->object_id;
    probe.mode = ScanMode::kSeeDeleted;
    probe.has_insertion_after = true;
    probe.insertion_after = cluster->authority()->StableTime();
    SeqScanOperator pruned_scan(w0->store(), obj, probe);
    auto pruned_rows = CollectAll(&pruned_scan);
    HARBOR_CHECK_OK(pruned_rows.status());
    HARBOR_CHECK(pruned_rows->empty());
    const size_t pruned = pruned_scan.segments_pruned() +
                          pruned_scan.zone_pruned_segments();
    const size_t pages_visited = pruned_scan.pages_visited();

    // Insert throughput (single stream; rollover frequency differs).
    ThroughputResult ins =
        MeasureInsertThroughput(cluster.get(), {table}, 1, 0.6);

    // Recovery after a small recent-data workload: small segments let the
    // recovery queries prune nearly everything.
    RunInsertTxns(cluster.get(), {table}, 500);
    cluster->AdvanceEpoch();
    cluster->CrashWorker(1);
    Stopwatch rec_watch;
    HARBOR_CHECK_OK(cluster->RecoverWorker(1).status());
    double rec_ms = rec_watch.ElapsedMillis();

    std::printf("%14u %10zu %12.1f %12.0f %14.1f %9zu %8zu\n", budget,
                segments, scan_ms, ins.tps, rec_ms, pruned, pages_visited);
  }
  std::printf("\n(expected: scans/inserts nearly flat — the merge across "
              "segments is cheap; recovery cost grows with segment size "
              "because Phase 1/2 must scan whole segments; the selective "
              "probe prunes every segment — directory ranges for row "
              "segments, zone stats for columnar images — visiting 0 "
              "pages)\n");
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
