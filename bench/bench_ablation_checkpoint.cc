// Ablation: runtime overhead of HARBOR's checkpointing (Figure 3-2) as a
// function of the checkpoint period.
//
// The paper claims that "updating this checkpoint once every 1-10 s imposes
// little runtime overhead" and that periods in that range moved transaction
// throughput by no more than 9.5% (§3.4, §6.3). At our 1/2 time scale the
// equivalent sweep is 0.5-5 s, plus an aggressive 100 ms point and a
// no-checkpoint baseline.

#include <cstdio>

#include "bench/bench_util.h"

namespace harbor::bench {
namespace {

void Run() {
  Banner("Ablation — checkpoint period vs transaction throughput",
         "§3.4 / §6.3 (checkpointing overhead claim)");

  const std::vector<int64_t> periods_ms = {0, 5000, 2000, 500, 100, 50};
  std::printf("%16s %10s %12s\n", "period (ms)", "tps", "vs baseline");
  double baseline = 0;
  for (int64_t period : periods_ms) {
    auto cluster = MakePaperCluster(CommitProtocol::kOptimized3PC, 2,
                                    /*group_commit=*/true, period);
    std::vector<TableId> tables;
    for (int t = 0; t < 8; ++t) {
      tables.push_back(MakeEvalTable(cluster.get(), "t" + std::to_string(t),
                                     64));
    }
    ThroughputResult r =
        MeasureInsertThroughput(cluster.get(), tables, 8, 1.2);
    if (period == 0) baseline = r.tps;
    std::printf("%16s %10.0f %11.1f%%\n",
                period == 0 ? "off" : std::to_string(period).c_str(), r.tps,
                baseline > 0 ? (r.tps / baseline - 1.0) * 100.0 : 0.0);
  }
  std::printf("\n(paper: 1-10 s periods cost <= 9.5%% throughput; expect the "
              "same shape — negligible until the period approaches the "
              "flush time itself)\n");
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
