#ifndef HARBOR_BENCH_BENCH_UTIL_H_
#define HARBOR_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/cluster.h"

namespace harbor::bench {

/// The evaluation tuple (§6.2): 16 4-byte integer fields including the two
/// timestamp fields — 14 user INT32 columns, 64 bytes + the tuple id.
inline Schema EvalSchema() {
  std::vector<Column> cols;
  for (int i = 0; i < 14; ++i) {
    cols.push_back(Column::Int32("f" + std::to_string(i)));
  }
  return Schema(std::move(cols));
}

inline std::vector<Value> EvalRow(int32_t seed) {
  std::vector<Value> row;
  row.reserve(14);
  for (int i = 0; i < 14; ++i) row.push_back(Value(seed + i));
  return row;
}

/// A cluster configured like the paper's testbed (§6.2): the scaled cost
/// model, checkpoints every 100 ms (paper: 1 s), epochs every 10 ms.
inline std::unique_ptr<Cluster> MakePaperCluster(
    CommitProtocol protocol, int workers, bool group_commit = true,
    int64_t checkpoint_period_ms = 100) {
  ClusterOptions opt;
  opt.num_workers = workers;
  opt.protocol = protocol;
  opt.group_commit = group_commit;
  opt.sim = SimConfig::PaperScaled();
  opt.checkpoint_period_ms = checkpoint_period_ms;
  opt.epoch_tick_ms = 10;
  opt.buffer_pages = 16384;  // 64 MB, paper machines had 2 GB
  auto cluster = Cluster::Create(opt);
  HARBOR_CHECK_OK(cluster.status());
  return std::move(cluster).value();
}

/// Creates one fully replicated evaluation table. `columnar` selects the
/// PAX-style sealed-segment layout on every replica (scan + recovery
/// replies then ship dictionary/FOR-compressed column blocks).
inline TableId MakeEvalTable(Cluster* cluster, const std::string& name,
                             uint32_t segment_page_budget,
                             bool columnar = false) {
  TableSpec spec;
  spec.name = name;
  spec.schema = EvalSchema();
  spec.default_segment_page_budget = segment_page_budget;
  spec.columnar = columnar;
  auto table = cluster->CreateTable(spec);
  HARBOR_CHECK_OK(table.status());
  return *table;
}

/// Bulk-loads `tuples` committed rows (the historical base data of the
/// recovery experiments, standing in for the paper's 1 GB preloaded
/// tables). Insertion timestamps advance one epoch per `tuples_per_epoch`
/// rows so that historical segments carry distinct insertion-time ranges,
/// as real time-partitioned warehouse data does — without this, recovery's
/// insertion-range pruning has nothing to discriminate on.
inline void Preload(Cluster* cluster, TableId table, size_t tuples,
                    size_t tuples_per_epoch = SIZE_MAX) {
  constexpr size_t kBatch = 20000;
  size_t loaded = 0;
  TupleId next_tid = (uint64_t{1} << 32);
  Timestamp max_ts = 1;
  while (loaded < tuples) {
    size_t n = std::min(kBatch, tuples - loaded);
    std::vector<LoadRow> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      LoadRow row;
      row.tuple_id = next_tid++;
      row.insertion_ts =
          1 + static_cast<Timestamp>((loaded + i) / tuples_per_epoch);
      max_ts = std::max(max_ts, row.insertion_ts);
      row.values = EvalRow(static_cast<int32_t>(loaded + i));
      rows.push_back(std::move(row));
    }
    HARBOR_CHECK_OK(cluster->BulkLoad(table, rows));
    loaded += n;
  }
  while (cluster->authority()->Now() <= max_ts) cluster->AdvanceEpoch();
}

struct ThroughputResult {
  double tps = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
};

/// Runs `streams` concurrent single-insert transaction streams for
/// `seconds` after a warmup, one table per stream (the Figure 6-2 workload:
/// "concurrent transactions insert tuples into different tables so that
/// conflicts do not arise"). `cpu_cycles` of simulated work ride on each
/// request (Figure 6-3).
inline ThroughputResult MeasureInsertThroughput(
    Cluster* cluster, const std::vector<TableId>& tables, int streams,
    double seconds, int64_t cpu_cycles = 0, double warmup_seconds = 0.3) {
  std::atomic<bool> stop{false};
  std::atomic<bool> counting{false};
  std::atomic<int64_t> committed{0};
  std::atomic<int64_t> aborted{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(streams));
  for (int s = 0; s < streams; ++s) {
    TableId table = tables[static_cast<size_t>(s) % tables.size()];
    threads.emplace_back([&, s, table] {
      int32_t seq = s * 1000000;
      while (!stop.load(std::memory_order_relaxed)) {
        Status st = cluster->coordinator()->InsertTxn(table, EvalRow(seq++),
                                                      cpu_cycles);
        if (counting.load(std::memory_order_relaxed)) {
          if (st.ok()) {
            committed.fetch_add(1, std::memory_order_relaxed);
          } else {
            aborted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(warmup_seconds * 1000)));
  counting = true;
  Stopwatch watch;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000)));
  counting = false;
  const double elapsed = watch.ElapsedSeconds();
  stop = true;
  for (auto& t : threads) t.join();
  ThroughputResult result;
  result.committed = committed.load();
  result.aborted = aborted.load();
  result.tps = static_cast<double>(result.committed) / elapsed;
  return result;
}

/// Prints a banner mapping the binary to its paper experiment.
inline void Banner(const std::string& what, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("HARBOR reproduction: %s\n", what.c_str());
  std::printf("Paper reference: %s\n", paper_ref.c_str());
  std::printf("(shape comparison; absolute numbers are ~1/2-scale sim)\n");
  std::printf("==============================================================\n");
}

}  // namespace harbor::bench

#endif  // HARBOR_BENCH_BENCH_UTIL_H_
