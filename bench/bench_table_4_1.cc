// Table 4.1: action table for the backup coordinator of the consensus
// building protocol (§4.3.3). This harness drives a 2-worker optimized-3PC
// cluster's transaction to each reachable backup state, crashes the
// coordinator, lets the workers run the consensus building protocol, and
// reports the action they converge on.
//
// Note: the correctness side of this table is asserted by
// tests/fault_test.cc (CoordinatorCrashMatrixTest), which crashes the
// coordinator at named fault points and checks the outcome under both 2PC
// and 3PC. This bench remains as a human-readable demonstration and for
// timing the consensus path; it is not the verification of record.
//
// Expected (Table 4.1):
//   backup state           action
//   pending                abort
//   prepared, voted NO     abort       (transient in this implementation:
//                                       a NO vote rolls back immediately)
//   prepared, voted YES    (prepare,) abort
//   aborted                abort       (transient, as above)
//   prepared-to-commit     prepare-to-commit, then commit (same time)
//   committed              commit

#include <cstdio>

#include <thread>

#include "bench/bench_util.h"
#include "core/messages.h"

namespace harbor::bench {
namespace {

enum class BackupState { kPending, kPreparedYes, kPreparedToCommit, kCommitted };

const char* Name(BackupState s) {
  switch (s) {
    case BackupState::kPending: return "pending";
    case BackupState::kPreparedYes: return "prepared, voted YES";
    case BackupState::kPreparedToCommit: return "prepared-to-commit";
    case BackupState::kCommitted: return "committed";
  }
  return "?";
}

// Returns "commit" or "abort" as observed after consensus settles.
std::string DriveAndObserve(BackupState state) {
  ClusterOptions opt;
  opt.num_workers = 2;
  opt.protocol = CommitProtocol::kOptimized3PC;
  opt.sim = SimConfig::Zero();
  auto cluster_r = Cluster::Create(opt);
  HARBOR_CHECK_OK(cluster_r.status());
  auto cluster = std::move(cluster_r).value();
  TableId table = MakeEvalTable(cluster.get(), "t", 64);
  Coordinator* coord = cluster->coordinator();

  auto txn_r = coord->Begin();
  HARBOR_CHECK_OK(txn_r.status());
  TxnId txn = *txn_r;
  HARBOR_CHECK_OK(coord->Insert(txn, table, EvalRow(1)));
  Network* net = cluster->network();
  const Timestamp ts = cluster->authority()->BeginCommit();

  // Workers move in lock-step, the backup (site 1) at most one state ahead
  // of site 2 (Figure 4-5).
  auto send_prepare = [&](SiteId site) {
    PrepareMsg m;
    m.txn = txn;
    m.coordinator = 0;
    m.participants = {1, 2};
    HARBOR_CHECK_OK(net->Call(0, site, m.Encode()).status());
  };
  auto send_ptc = [&](SiteId site) {
    CommitTsMsg m;
    m.type = MsgType::kPrepareToCommit;
    m.txn = txn;
    m.commit_ts = ts;
    HARBOR_CHECK_OK(net->Call(0, site, m.Encode()).status());
  };
  auto send_commit = [&](SiteId site) {
    CommitTsMsg m;
    m.txn = txn;
    m.commit_ts = ts;
    HARBOR_CHECK_OK(net->Call(0, site, m.Encode()).status());
  };

  switch (state) {
    case BackupState::kPending:
      break;  // both workers merely executed the update
    case BackupState::kPreparedYes:
      send_prepare(1);
      send_prepare(2);
      break;
    case BackupState::kPreparedToCommit:
      send_prepare(1);
      send_prepare(2);
      send_ptc(1);  // site 2 stays prepared: one state apart
      break;
    case BackupState::kCommitted:
      send_prepare(1);
      send_prepare(2);
      send_ptc(1);
      send_ptc(2);
      send_commit(1);  // site 2 still prepared-to-commit
      break;
  }

  coord->Crash();  // workers detect and run the consensus protocol

  for (int i = 0; i < 200; ++i) {
    if (cluster->worker(0)->txns()->size() == 0 &&
        cluster->worker(1)->txns()->size() == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  cluster->AdvanceEpoch(2);

  // Consistent outcome across workers?
  size_t w0 = cluster->worker(0)->local_catalog()->objects()[0]->index.size();
  size_t w1 = cluster->worker(1)->local_catalog()->objects()[0]->index.size();
  if (w0 != w1) return "INCONSISTENT";
  return w0 == 1 ? "commit" : "abort";
}

void Run() {
  Banner("Table 4.1 — backup coordinator action table", "§4.3.3, Table 4.1");
  struct Row {
    BackupState state;
    const char* expected;
  };
  const std::vector<Row> rows = {
      {BackupState::kPending, "abort"},
      {BackupState::kPreparedYes, "abort"},
      {BackupState::kPreparedToCommit, "commit"},
      {BackupState::kCommitted, "commit"},
  };
  std::printf("%-24s %-10s %-10s\n", "backup state", "observed", "expected");
  bool all = true;
  for (const Row& row : rows) {
    std::string observed = DriveAndObserve(row.state);
    bool ok = observed == row.expected;
    all &= ok;
    std::printf("%-24s %-10s %-10s %s\n", Name(row.state), observed.c_str(),
                row.expected, ok ? "MATCH" : "MISMATCH");
  }
  std::printf("%-24s %-10s %-10s (transient: a NO vote aborts locally at "
              "once)\n", "prepared, voted NO", "abort", "abort");
  std::printf("%-24s %-10s %-10s (transient, as above)\n", "aborted", "abort",
              "abort");
  std::printf("\n%s\n", all ? "All reachable Table 4.1 rows match."
                            : "Deviation from Table 4.1!");
}

}  // namespace
}  // namespace harbor::bench

int main() {
  harbor::bench::Run();
  return 0;
}
